//! Fragmentation-equivalence tests for the incremental [`Decoder`]: the
//! frames it yields must not depend on how the byte stream is cut up.
//!
//! A reference interpreter re-implements the *whole-line* semantics the
//! old blocking transport had (`read_until` lines, batch bodies consumed
//! even when malformed, truncation at EOF fails the batch, a rejected
//! `BATCH` header poisons the stream) directly on top of `parse_request` /
//! `parse_pair`. Every generated stream is decoded four ways — one shot,
//! one byte at a time, random splits, and adversarially around newline
//! boundaries — and all four must equal the reference.

use hcl_server::protocol::{self, Decoder, Frame};
use proptest::prelude::*;
use proptest::TestRng;

/// Strips trailing newline bytes the way the blocking reader did.
fn trim(bytes: &[u8]) -> String {
    let mut end = bytes.len();
    while end > 0 && matches!(bytes[end - 1], b'\n' | b'\r') {
        end -= 1;
    }
    String::from_utf8_lossy(&bytes[..end]).into_owned()
}

/// Whole-line reference semantics (independent of the decoder's
/// incremental state machine).
fn reference_frames(input: &[u8]) -> Vec<Frame> {
    let mut lines: Vec<String> = Vec::new();
    let mut start = 0;
    for (i, &b) in input.iter().enumerate() {
        if b == b'\n' {
            lines.push(trim(&input[start..=i]));
            start = i + 1;
        }
    }
    if start < input.len() {
        lines.push(trim(&input[start..])); // trailing unterminated line
    }

    let mut frames = Vec::new();
    let mut iter = lines.into_iter();
    while let Some(line) = iter.next() {
        match protocol::parse_request(&line) {
            Ok(protocol::Request::Batch(k)) => {
                let mut pairs = Vec::new();
                let mut first_err = None;
                let mut got = 0;
                while got < k {
                    match iter.next() {
                        Some(body) => {
                            got += 1;
                            match protocol::parse_pair(&body) {
                                Ok(p) => {
                                    if first_err.is_none() {
                                        pairs.push(p);
                                    }
                                }
                                Err(e) => {
                                    if first_err.is_none() {
                                        first_err = Some(e);
                                    }
                                }
                            }
                        }
                        None => {
                            // Body truncated by end of input.
                            frames.push(Frame::Corrupt(protocol::ProtocolError::BadArity {
                                command: "BATCH",
                                expected: "k pair lines",
                            }));
                            return frames;
                        }
                    }
                }
                frames.push(match first_err {
                    Some(e) => Frame::Invalid(e),
                    None => Frame::Batch(pairs),
                });
            }
            Ok(protocol::Request::Query(s, t)) => frames.push(Frame::Query(s, t)),
            Ok(protocol::Request::Stats) => frames.push(Frame::Stats),
            Ok(protocol::Request::Metrics) => frames.push(Frame::Metrics),
            Ok(protocol::Request::Ping) => frames.push(Frame::Ping),
            Ok(protocol::Request::Epoch) => frames.push(Frame::Epoch),
            Ok(protocol::Request::Reload { graph, index }) => {
                frames.push(Frame::Reload { graph, index });
            }
            Ok(protocol::Request::Update { add, u, v }) => {
                frames.push(Frame::Update { add, u, v });
            }
            Ok(protocol::Request::Shutdown) => frames.push(Frame::Shutdown),
            Err(e) => {
                if line.trim_start().starts_with("BATCH") {
                    // Unhonourable header: the undelimited body cannot be
                    // skipped; everything after is discarded.
                    frames.push(Frame::Corrupt(e));
                    return frames;
                }
                frames.push(Frame::Invalid(e));
            }
        }
    }
    frames
}

/// Decodes `input` delivered as the given fragments (plus EOF).
fn decode_fragmented(input: &[u8], cuts: &[usize]) -> Vec<Frame> {
    let mut decoder = Decoder::new();
    let mut frames = Vec::new();
    let mut start = 0;
    for &cut in cuts {
        decoder.feed(&input[start..cut]);
        while let Some(f) = decoder.next_frame() {
            frames.push(f);
        }
        start = cut;
    }
    decoder.feed(&input[start..]);
    while let Some(f) = decoder.next_frame() {
        frames.push(f);
    }
    decoder.finish();
    while let Some(f) = decoder.next_frame() {
        frames.push(f);
    }
    frames
}

/// One random request stream: weighted towards near-valid traffic, with
/// complete, malformed, and (possibly) truncated `BATCH` bodies, plus
/// binary garbage and an optional unterminated final line.
fn random_stream(rng: &mut TestRng) -> Vec<u8> {
    let mut out = Vec::new();
    let commands = 1 + rng.below(10);
    for c in 0..commands {
        let a = rng.below(100_000);
        let b = rng.below(100_000);
        match rng.below(13) {
            0 => out.extend_from_slice(format!("QUERY {a} {b}\n").as_bytes()),
            1 => out.extend_from_slice(format!("QUERY {a}\n").as_bytes()),
            2 => out.extend_from_slice(format!("QUERY {a} x{b}\n").as_bytes()),
            3 => out.extend_from_slice(b"PING\n"),
            4 => out.extend_from_slice(b"STATS\n"),
            5 => out.extend_from_slice(b"EPOCH\n"),
            6 => out.extend_from_slice(b"SHUTDOWN\n"),
            7 => out.extend_from_slice(format!("RELOAD /tmp/g{a}.hclg\n").as_bytes()),
            8 => out.extend_from_slice(b"\n"),
            9 => out.extend_from_slice(b"\x7f\x01garbage \x02\t###\n"),
            10 => out.extend_from_slice(format!("{a} {b}\n").as_bytes()),
            11 => {
                // Bad header: unparseable or oversized k.
                if rng.below(2) == 0 {
                    out.extend_from_slice(b"BATCH\n");
                } else {
                    out.extend_from_slice(
                        format!("BATCH {}\n", protocol::MAX_BATCH as u64 + 1 + a).as_bytes(),
                    );
                }
            }
            _ => {
                let k = rng.below(5) as usize;
                out.extend_from_slice(format!("BATCH {k}\n").as_bytes());
                // Last command may truncate its body; earlier ones are
                // complete (possibly with malformed pairs inside).
                let body = if c + 1 == commands { rng.below(k as u64 + 1) as usize } else { k };
                for i in 0..body {
                    match rng.below(5) {
                        0 => out.extend_from_slice(format!("{i} oops\n").as_bytes()),
                        1 => out.extend_from_slice(b"PING\n"), // command hiding in a body
                        _ => out.extend_from_slice(format!("{i} {}\n", i * 3).as_bytes()),
                    }
                }
            }
        }
    }
    // Sometimes leave the final line unterminated.
    if out.ends_with(b"\n") && rng.below(3) == 0 {
        out.pop();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        if cfg!(debug_assertions) { 128 } else { 512 }
    ))]

    /// 1-byte-at-a-time, random-split, and adversarially-fragmented input
    /// all decode to exactly the whole-line reference frames.
    #[test]
    fn fragmentation_never_changes_the_frames(case in 0u64..u64::MAX) {
        let mut rng = TestRng::from_name(&format!("decoder-frag-{case}"));
        let input = random_stream(&mut rng);
        let expect = reference_frames(&input);

        // One shot.
        prop_assert_eq!(&decode_fragmented(&input, &[]), &expect, "one-shot");

        // One byte at a time.
        let bytes: Vec<usize> = (1..input.len()).collect();
        prop_assert_eq!(&decode_fragmented(&input, &bytes), &expect, "1-byte");

        // Random splits.
        let mut cuts = Vec::new();
        let mut at = 0;
        while at + 1 < input.len() {
            at += 1 + rng.below(16) as usize;
            if at < input.len() {
                cuts.push(at);
            }
        }
        prop_assert_eq!(&decode_fragmented(&input, &cuts), &expect, "random splits");

        // Adversarial: a cut immediately before and after every newline,
        // so frames always straddle a fragment boundary.
        let mut cuts = Vec::new();
        for (i, &b) in input.iter().enumerate() {
            if b == b'\n' {
                if i > 0 {
                    cuts.push(i);
                }
                if i + 1 < input.len() {
                    cuts.push(i + 1);
                }
            }
        }
        cuts.dedup();
        prop_assert_eq!(&decode_fragmented(&input, &cuts), &expect, "newline-adversarial");
    }
}

/// Oversized-line limit, wire level: a line past [`protocol::MAX_LINE_BYTES`]
/// gets one clean `ERR` and a close, with server-side memory bounded the
/// whole time — the decoder never buffers past the limit.
#[test]
fn oversized_line_gets_one_err_and_a_close_with_bounded_memory() {
    use hcl_core::testing::ba_fixture;
    use hcl_server::{Client, QueryService, Server, ServerConfig};
    use std::io::{Read, Write};
    use std::sync::Arc;

    // Under the chaos feature the sibling module below installs global
    // fault scripts; don't let its 1-byte reads slow this 4 MiB flood.
    #[cfg(feature = "fault-injection")]
    let _serial = hcl_core::fault::exclusive();

    // Decoder level: the buffer cannot outgrow the limit by more than one
    // fragment, no matter how much garbage is poured in.
    let mut decoder = Decoder::new();
    let mut corrupt = Vec::new();
    let chunk = [b'y'; 4096];
    for _ in 0..(4 * protocol::MAX_LINE_BYTES / chunk.len()) {
        decoder.feed(&chunk);
        while let Some(f) = decoder.next_frame() {
            corrupt.push(f);
        }
        assert!(
            decoder.buffered() <= protocol::MAX_LINE_BYTES + chunk.len(),
            "decoder buffered {} bytes",
            decoder.buffered()
        );
    }
    assert_eq!(
        corrupt,
        vec![Frame::Corrupt(protocol::ProtocolError::LineTooLong {
            limit: protocol::MAX_LINE_BYTES
        })]
    );

    // Wire level: one ERR line, then EOF; other connections unaffected.
    let (g, labelling) = ba_fixture(100, 3, 4, 4);
    let service = Arc::new(QueryService::from_parts(g, labelling, 0));
    let handle =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut bad = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    bad.write_all(&vec![b'z'; protocol::MAX_LINE_BYTES * 4]).unwrap();
    bad.flush().unwrap();
    bad.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
    let mut response = String::new();
    // A read error (reset) counts as closed too.
    if bad.read_to_string(&mut response).is_ok() {
        assert!(response.starts_with("ERR "), "got {response:?}");
        assert_eq!(response.matches('\n').count(), 1, "exactly one response line");
    }

    let mut good = Client::connect(handle.local_addr()).unwrap();
    good.ping().unwrap();
    handle.shutdown();
}

/// The same fragmentation-equivalence property, pushed down to the
/// wire (`--features fault-injection`): scripted 1-byte reads plus
/// EAGAIN/EINTR storms chop the byte stream at the *syscall* level, so
/// the live server's decoder sees maximally hostile fragmentation —
/// and the full response stream must be byte-identical to a fault-free
/// exchange, one line per reference frame.
#[cfg(feature = "fault-injection")]
mod faulted_wire {
    use super::*;
    use hcl_core::fault::{exclusive, install_global, Fault, Op, Script, Trigger, EAGAIN, EINTR};
    use hcl_server::{QueryService, Server, ServerConfig, ServerHandle};
    use std::io::{Read, Write};
    use std::net::{Shutdown, TcpStream};
    use std::sync::{Arc, OnceLock};
    use std::time::Duration;

    /// One shared server for every proptest case (built once; reclaimed
    /// at process exit).
    fn server() -> &'static ServerHandle {
        static SERVER: OnceLock<ServerHandle> = OnceLock::new();
        SERVER.get_or_init(|| {
            let (g, labelling) = hcl_core::testing::ba_fixture(100, 3, 4, 4);
            let service = Arc::new(QueryService::from_parts(g, labelling, 0));
            Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap()
        })
    }

    /// Writes the whole stream, half-closes, and drains every response
    /// byte until the server's own EOF.
    fn exchange(input: &[u8]) -> Vec<u8> {
        let mut conn = TcpStream::connect(server().local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        conn.write_all(input).unwrap();
        conn.shutdown(Shutdown::Write).unwrap();
        let mut out = Vec::new();
        conn.read_to_end(&mut out).unwrap();
        out
    }

    /// Like [`random_stream`], minus anything whose response bytes
    /// depend on server state rather than the input alone: no
    /// `SHUTDOWN`/`RELOAD` (side effects), no `STATS`/`METRICS`
    /// (counter-valued bodies), and no mid-stream corrupt `BATCH`
    /// headers (the server discards unread input on close, which can
    /// surface as a reset instead of the final `ERR` line). A batch
    /// body truncated by EOF stays in: by then every input byte has
    /// been read, so the close is always graceful.
    fn wire_stream(rng: &mut TestRng) -> Vec<u8> {
        let mut out = Vec::new();
        let commands = 1 + rng.below(8);
        for c in 0..commands {
            let a = rng.below(200);
            let b = rng.below(200);
            match rng.below(10) {
                0 | 1 => out.extend_from_slice(format!("QUERY {a} {b}\n").as_bytes()),
                2 => out.extend_from_slice(format!("QUERY {a}\n").as_bytes()),
                3 => out.extend_from_slice(format!("QUERY {a} x{b}\n").as_bytes()),
                4 => out.extend_from_slice(b"PING\n"),
                5 => out.extend_from_slice(b"EPOCH\n"),
                6 => out.extend_from_slice(b"\n"),
                7 => out.extend_from_slice(b"\x7f\x01garbage \x02\t###\n"),
                _ => {
                    let k = rng.below(4) as usize;
                    out.extend_from_slice(format!("BATCH {k}\n").as_bytes());
                    let body = if c + 1 == commands { rng.below(k as u64 + 1) as usize } else { k };
                    for i in 0..body {
                        match rng.below(4) {
                            0 => out.extend_from_slice(format!("{i} oops\n").as_bytes()),
                            _ => out.extend_from_slice(format!("{i} {}\n", i * 3 + 1).as_bytes()),
                        }
                    }
                }
            }
        }
        if out.ends_with(b"\n") && rng.below(3) == 0 {
            out.pop();
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(
            if cfg!(debug_assertions) { 24 } else { 96 }
        ))]

        #[test]
        fn syscall_level_fragmentation_never_changes_the_responses(case in 0u64..u64::MAX) {
            let mut rng = TestRng::from_name(&format!("wire-frag-{case}"));
            let input = wire_stream(&mut rng);
            let frames = reference_frames(&input).len();

            // Faults fire on the reactor thread → global script; hold the
            // serial slot across both exchanges so the clean one is clean.
            let _serial = exclusive();
            let clean = exchange(&input);
            prop_assert_eq!(
                clean.iter().filter(|&&b| b == b'\n').count(),
                frames,
                "one response line per reference frame: {:?}",
                String::from_utf8_lossy(&clean)
            );

            let guard = install_global(
                Script::new()
                    .on(Op::Read, Trigger::Every(5), Fault::Errno(EINTR))
                    .on(Op::Read, Trigger::Every(3), Fault::Errno(EAGAIN))
                    .on(Op::Read, Trigger::Always, Fault::Short(1))
                    .on(Op::Write, Trigger::Every(4), Fault::Errno(EAGAIN))
                    .on(Op::Write, Trigger::Always, Fault::Short(1)),
            );
            let faulted = exchange(&input);
            let reads = guard.calls(Op::Read);
            drop(guard);

            prop_assert_eq!(&faulted, &clean, "faulted wire diverged from clean wire");
            // 1-byte reads + EAGAIN/EINTR really did shred the stream.
            prop_assert!(reads as usize > input.len(), "{reads} reads for {} bytes", input.len());
        }
    }
}
