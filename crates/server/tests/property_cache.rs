//! Property test: serving with the sharded LRU cache enabled returns
//! exactly the distances cache-less serving returns, on arbitrary graphs
//! and query streams — including repeated pairs (hits), both orientations
//! of a pair (key normalisation), and capacities small enough to force
//! evictions mid-stream.

use hcl_core::HighwayCoverLabelling;
use hcl_graph::CsrGraph;
use hcl_server::{BatchExecutor, CacheConfig, QueryService, ShardedCache};
use proptest::prelude::*;
use std::sync::Arc;

fn graph_landmarks_queries() -> impl Strategy<Value = (CsrGraph, Vec<u32>, Vec<(u32, u32)>, usize)>
{
    (4usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..120);
        let landmark_sel = proptest::collection::vec(0..n as u32, 0..5);
        // Repeats are likely with ids drawn from a small domain, so the hit
        // path is exercised; tiny capacities force evictions.
        let queries = proptest::collection::vec((0..n as u32, 0..n as u32), 1..120);
        let capacity = 1usize..32;
        (Just(n), edges, landmark_sel, queries, capacity).prop_map(
            |(n, edges, landmark_sel, queries, capacity)| {
                let g = CsrGraph::from_edges(n, &edges);
                let mut landmarks = landmark_sel;
                landmarks.sort_unstable();
                landmarks.dedup();
                (g, landmarks, queries, capacity)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_on_and_cache_off_serve_identical_distances(
        (g, landmarks, queries, capacity) in graph_landmarks_queries()
    ) {
        let g = Arc::new(g);
        let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let labelling = Arc::new(labelling);
        let cached =
            QueryService::from_parts(Arc::clone(&g), Arc::clone(&labelling), capacity);
        let plain = QueryService::from_parts(Arc::clone(&g), labelling, 0);

        for &(s, t) in &queries {
            let a = cached.distance(s, t).unwrap();
            let b = plain.distance(s, t).unwrap();
            prop_assert_eq!(a, b, "d({}, {}) capacity {}", s, t, capacity);
            // The reversed orientation hits the same normalised key and
            // must agree too.
            prop_assert_eq!(cached.distance(t, s).unwrap(), b, "d({}, {})", t, s);
        }
        // Everything went through the cache exactly once per lookup.
        let stats = cached.cache_stats();
        prop_assert_eq!(stats.hits + stats.misses, 2 * queries.len() as u64);
        prop_assert!(stats.entries <= stats.capacity);
    }

    #[test]
    fn batched_and_single_serving_agree_with_and_without_cache(
        (g, landmarks, queries, capacity) in graph_landmarks_queries()
    ) {
        let g = Arc::new(g);
        let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let labelling = Arc::new(labelling);
        let cached = Arc::new(QueryService::from_parts(
            Arc::clone(&g),
            Arc::clone(&labelling),
            capacity,
        ));
        let plain = Arc::new(QueryService::from_parts(Arc::clone(&g), labelling, 0));

        let singles: Vec<Option<u32>> =
            queries.iter().map(|&(s, t)| plain.distance(s, t).unwrap()).collect();
        let via_cached_batch = BatchExecutor::new(Arc::clone(&cached), 3)
            .execute(&queries)
            .unwrap();
        let via_plain_batch = BatchExecutor::new(Arc::clone(&plain), 3)
            .execute(&queries)
            .unwrap();
        prop_assert_eq!(&via_cached_batch, &singles);
        prop_assert_eq!(&via_plain_batch, &singles);
    }

    /// Epoch invalidation property: after a swap (`clear()` + epoch bump),
    /// a lookup under the new epoch can never observe a value inserted
    /// under the old one — not even when old-epoch writers race on after
    /// the clear, as in-flight queries do during a hot reload. Old-epoch
    /// values are encoded distinguishably (`3e + v`), so any leak across
    /// the boundary is caught exactly.
    #[test]
    fn no_lookup_after_epoch_bump_sees_pre_swap_entries(
        keys in proptest::collection::vec((0u32..30, 0u32..30), 1..80),
        stragglers in proptest::collection::vec((0u32..30, 0u32..30), 0..40),
        capacity in 1usize..64,
        shards in 1usize..8,
    ) {
        let value_at = |epoch: u64, s: u32, t: u32| Some(epoch as u32 * 3 + (s + t) % 3);
        let cache = ShardedCache::new(CacheConfig { capacity, shards });
        for &(s, t) in &keys {
            cache.insert(s, t, 0, value_at(0, s, t));
        }

        // The swap: epoch 0 -> 1, one clear.
        cache.clear();
        // In-flight old-epoch queries finish and write back after the clear.
        for &(s, t) in &stragglers {
            cache.insert(s, t, 0, value_at(0, s, t));
        }

        // Nothing has been computed under epoch 1 yet, so *every* lookup
        // under it must miss, whatever the interleaving left resident.
        for &(s, t) in keys.iter().chain(&stragglers) {
            prop_assert_eq!(cache.get(s, t, 1), None, "stale value visible for ({}, {})", s, t);
        }

        // Mixed-epoch churn: epoch-1 values become visible to epoch-1
        // readers, epoch-0 values never do.
        for (i, &(s, t)) in keys.iter().enumerate() {
            let epoch = (i % 2) as u64;
            cache.insert(s, t, epoch, value_at(epoch, s, t));
        }
        for &(s, t) in &keys {
            if let Some(hit) = cache.get(s, t, 1) {
                prop_assert_eq!(hit, value_at(1, s, t), "epoch-1 read of ({}, {})", s, t);
            }
        }
        // Deterministic stale exercise: a key outside the generated domain
        // is inserted under epoch 0 and immediately read under epoch 1.
        cache.insert(1_000, 1_001, 0, value_at(0, 1_000, 1_001));
        prop_assert_eq!(cache.get(1_000, 1_001, 1), None);

        let stats = cache.stats();
        prop_assert!(stats.stale > 0, "stale rejection must have fired");
        prop_assert!(stats.entries <= stats.capacity);
    }
}
