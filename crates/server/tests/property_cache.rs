//! Property test: serving with the sharded LRU cache enabled returns
//! exactly the distances cache-less serving returns, on arbitrary graphs
//! and query streams — including repeated pairs (hits), both orientations
//! of a pair (key normalisation), and capacities small enough to force
//! evictions mid-stream.

use hcl_core::HighwayCoverLabelling;
use hcl_graph::CsrGraph;
use hcl_server::{BatchExecutor, QueryService};
use proptest::prelude::*;
use std::sync::Arc;

fn graph_landmarks_queries() -> impl Strategy<Value = (CsrGraph, Vec<u32>, Vec<(u32, u32)>, usize)>
{
    (4usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..120);
        let landmark_sel = proptest::collection::vec(0..n as u32, 0..5);
        // Repeats are likely with ids drawn from a small domain, so the hit
        // path is exercised; tiny capacities force evictions.
        let queries = proptest::collection::vec((0..n as u32, 0..n as u32), 1..120);
        let capacity = 1usize..32;
        (Just(n), edges, landmark_sel, queries, capacity).prop_map(
            |(n, edges, landmark_sel, queries, capacity)| {
                let g = CsrGraph::from_edges(n, &edges);
                let mut landmarks = landmark_sel;
                landmarks.sort_unstable();
                landmarks.dedup();
                (g, landmarks, queries, capacity)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_on_and_cache_off_serve_identical_distances(
        (g, landmarks, queries, capacity) in graph_landmarks_queries()
    ) {
        let g = Arc::new(g);
        let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let labelling = Arc::new(labelling);
        let cached =
            QueryService::from_parts(Arc::clone(&g), Arc::clone(&labelling), capacity);
        let plain = QueryService::from_parts(Arc::clone(&g), labelling, 0);

        for &(s, t) in &queries {
            let a = cached.distance(s, t).unwrap();
            let b = plain.distance(s, t).unwrap();
            prop_assert_eq!(a, b, "d({}, {}) capacity {}", s, t, capacity);
            // The reversed orientation hits the same normalised key and
            // must agree too.
            prop_assert_eq!(cached.distance(t, s).unwrap(), b, "d({}, {})", t, s);
        }
        // Everything went through the cache exactly once per lookup.
        let stats = cached.cache_stats();
        prop_assert_eq!(stats.hits + stats.misses, 2 * queries.len() as u64);
        prop_assert!(stats.entries <= stats.capacity);
    }

    #[test]
    fn batched_and_single_serving_agree_with_and_without_cache(
        (g, landmarks, queries, capacity) in graph_landmarks_queries()
    ) {
        let g = Arc::new(g);
        let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let labelling = Arc::new(labelling);
        let cached = Arc::new(QueryService::from_parts(
            Arc::clone(&g),
            Arc::clone(&labelling),
            capacity,
        ));
        let plain = Arc::new(QueryService::from_parts(Arc::clone(&g), labelling, 0));

        let singles: Vec<Option<u32>> =
            queries.iter().map(|&(s, t)| plain.distance(s, t).unwrap()).collect();
        let via_cached_batch = BatchExecutor::new(Arc::clone(&cached), 3)
            .execute(&queries)
            .unwrap();
        let via_plain_batch = BatchExecutor::new(Arc::clone(&plain), 3)
            .execute(&queries)
            .unwrap();
        prop_assert_eq!(&via_cached_batch, &singles);
        prop_assert_eq!(&via_plain_batch, &singles);
    }
}
