//! Protocol robustness: randomized and adversarial byte streams against
//! both the pure parser and a live server.
//!
//! Contract under test: whatever bytes arrive, the server either answers
//! each (attempted) request with one well-formed response line or closes
//! the connection — it never panics, never hangs, and never desyncs so far
//! that a *fresh* connection stops working.

use hcl_core::testing::ba_fixture;
use hcl_server::{protocol, Client, QueryService, Server, ServerConfig, ServerHandle};
use proptest::prelude::*;
use proptest::TestRng;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// One random request line. Deliberately weighted towards near-valid
/// traffic (truncated commands, bad numbers, oversized headers, BATCH
/// declarations whose bodies will be wrong) plus outright binary garbage.
/// Never generates `SHUTDOWN` — the live-server harness must stay up.
fn random_line(rng: &mut TestRng) -> String {
    let a = rng.below(100_000);
    let b = rng.below(100_000);
    match rng.below(14) {
        0 => format!("QUERY {a} {b}"),
        1 => format!("QUERY {a}"),
        2 => format!("QUERY {a} {b} {a}"),
        3 => format!("QUERY {a} x{b}"),
        4 => format!("BATCH {}", rng.below(4)),
        5 => format!("BATCH {}", protocol::MAX_BATCH as u64 + 1 + a),
        6 => "BATCH".to_string(),
        7 => format!("{a} {b}"), // a stray pair line outside any batch
        8 => "PING".to_string(),
        9 => "STATS".to_string(),
        10 => "EPOCH".to_string(),
        11 => String::new(),
        12 => "\u{7f}\u{1}garbage \u{2}\t###".to_string(),
        _ => format!("QUERY {} {b}", "9".repeat(1 + rng.below(38) as usize)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The pure parser never panics on arbitrary near-protocol lines, and
    /// classifies every line as exactly one of Ok / Err.
    #[test]
    fn parser_total_on_random_lines(kind in 0u64..1_000_000, salt in 0u64..u64::MAX) {
        let mut rng = TestRng::from_name(&format!("parser-fuzz-{kind}-{salt}"));
        let line = random_line(&mut rng);
        let _ = protocol::parse_request(&line);
        let _ = protocol::parse_pair(&line);
    }
}

fn spawn_server() -> ServerHandle {
    let (g, labelling) = ba_fixture(200, 3, 17, 6);
    let service = Arc::new(QueryService::from_parts(g, labelling, 256));
    Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap()
}

/// Response lines the server is allowed to emit.
fn is_well_formed_response(line: &str) -> bool {
    line == "PONG"
        || line == "BYE"
        || line.starts_with("DIST ")
        || line.starts_with("DISTS")
        || line.starts_with("STATS ")
        || line.starts_with("EPOCH ")
        || line.starts_with("RELOADED ")
        || line.starts_with("ERR ")
}

/// Fires `lines` at a fresh connection, closes the write half, and drains
/// every response until the server closes. Panics on a malformed response
/// line; returns how many responses arrived.
fn exchange(addr: std::net::SocketAddr, lines: &[String]) -> usize {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    // A write failure (EPIPE) means the server already closed on earlier
    // garbage — legitimate; move on to draining what it said before that.
    let _ = (|| -> std::io::Result<()> {
        for line in lines {
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        // EOF on the request stream: the server answers what it can and
        // closes (a truncated BATCH body cannot park the connection).
        writer.shutdown(Shutdown::Write)
    })();
    let mut responses = 0;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let line = line.trim_end_matches(['\r', '\n']);
                assert!(is_well_formed_response(line), "malformed response {line:?}");
                responses += 1;
            }
            // A hang is a failure; a reset is just an unceremonious close.
            Err(e) => {
                assert!(
                    !matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ),
                    "server hung instead of answering or closing"
                );
                break;
            }
        }
    }
    assert!(responses <= lines.len(), "more responses than request lines");
    responses
}

/// Random request streams (including truncated/oversized/interleaved
/// `BATCH` bodies) never panic, hang, or wedge the server: every exchanged
/// connection terminates cleanly and a fresh client still gets service.
#[test]
fn live_server_survives_random_request_streams() {
    let handle = spawn_server();
    let addr = handle.local_addr();
    let mut rng = TestRng::from_name("wire-fuzz");
    let mut total_responses = 0;
    for _ in 0..40 {
        let lines: Vec<String> = (0..1 + rng.below(12)).map(|_| random_line(&mut rng)).collect();
        total_responses += exchange(addr, &lines);
    }
    assert!(total_responses > 0, "the fuzz stream never got a single response");

    // The server took all that without losing the ability to serve.
    let mut client = Client::connect(addr).unwrap();
    assert!(client.query(0, 199).unwrap().is_some() || client.query(0, 199).unwrap().is_none());
    client.ping().unwrap();
    handle.shutdown();
}

/// Adversarial deterministic streams around BATCH framing: declared bodies
/// that contain other commands, bodies cut off by EOF, batches nested in
/// batches. After each, the connection either answered in order or closed —
/// and the next connection is always clean.
#[test]
fn interleaved_and_truncated_batch_bodies_cannot_desync() {
    let handle = spawn_server();
    let addr = handle.local_addr();

    // A command hiding inside a declared body is consumed as (bad) pairs:
    // one ERR for the batch, then the following PING answers as itself.
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(b"BATCH 3\n1 2\nBATCH 2\n3 4\nPING\nQUERY 0 1\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR "), "batch with embedded command: {line:?}");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "PONG", "framing resynchronised on the request after the body");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("DIST "), "{line:?}");
    drop(reader);
    drop(writer);

    // Truncated bodies at every cut point: the connection must answer what
    // it can and close on EOF — never hang waiting for the missing lines.
    for body_lines in 0..3 {
        let mut lines = vec!["BATCH 3".to_string()];
        for i in 0..body_lines {
            lines.push(format!("{i} {i}"));
        }
        let responses = exchange(addr, &lines);
        assert!(responses <= 1, "a truncated batch gets at most one ERR");
    }

    // A batch declaring k = 0 is legal and must not consume what follows.
    let responses = exchange(addr, &["BATCH 0".to_string(), "PING".to_string()]);
    assert_eq!(responses, 2, "BATCH 0 answers immediately and PING still gets through");

    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    handle.shutdown();
}
