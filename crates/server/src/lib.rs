//! `hcl-server` — the concurrent distance-query serving subsystem.
//!
//! The labelling built by `hcl-core` answers exact distance queries in
//! microseconds, and it is immutable once built — so the serving problem is
//! pure fan-out. This crate turns one index into a multi-client service:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`oracle_pool`] | [`QueryService`]: an epoch-tagged hot-swappable [`SharedOracle`](hcl_core::SharedOracle) + optional cache + metrics, all `&self` |
//! | [`cache`] | [`ShardedCache`]: mutex-striped LRU over normalised `(s, t)` keys, epoch-tagged entries, hit/miss/stale/eviction counters |
//! | [`batch`] | [`BatchExecutor`]: a persistent worker pool answering `Vec<(s, t)>` in input order, one epoch per batch, completion callbacks |
//! | [`protocol`] | the newline-delimited wire protocol (`QUERY` / `BATCH` / `STATS` / `PING` / `EPOCH` / `RELOAD` / `UPDATE` / `SHUTDOWN`), both codec directions, and the incremental [`Decoder`] |
//! | [`server`] | std-only TCP server: single-threaded epoll reactor, nonblocking sockets, graceful eventfd-signalled shutdown |
//! | [`transport`] | the reusable event-loop building blocks: [`transport::Conn`] state machine, [`transport::sys`] epoll/eventfd bindings |
//! | [`client`] | a blocking client for the protocol |
//! | [`metrics`] | lock-free serving counters and snapshots |
//!
//! Internally the server is an event loop (`reactor`) over the reusable
//! [`transport`] layer — per-connection state machines
//! ([`transport::Conn`]) and a hand-rolled std-only epoll/eventfd binding
//! ([`transport::sys`], Linux-only): connections are an fd plus buffers,
//! not a thread, so open-connection count is bounded by fds — not by
//! threads — and the serving thread count is fixed at one reactor plus
//! the worker pool. The transport layer is public because `hcl-router`
//! drives its proxy connections with the same machinery.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use hcl_core::HighwayCoverLabelling;
//! use hcl_graph::generate;
//! use hcl_server::{Client, QueryService, Server, ServerConfig};
//!
//! let g = Arc::new(generate::barabasi_albert(500, 4, 7));
//! let landmarks = hcl_graph::order::top_degree(&g, 8);
//! let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
//!
//! let service = Arc::new(QueryService::from_parts(g, Arc::new(labelling), 1 << 12));
//! let handle =
//!     Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! let d = client.query(1, 499).unwrap();
//! assert!(d.is_some());
//! assert_eq!(client.batch(&[(1, 499), (2, 2)]).unwrap(), vec![d, Some(0)]);
//! handle.shutdown();
//! ```

pub mod batch;
pub mod cache;
pub mod client;
pub mod metrics;
pub mod oracle_pool;
pub mod protocol;
mod reactor;
pub mod server;
pub mod serving;
pub mod transport;

pub use batch::BatchExecutor;
pub use cache::{CacheConfig, CacheStats, ShardedCache};
pub use client::{Client, ClientError};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use oracle_pool::{IndexSizes, QueryError, QueryService, ReloadError, UpdateApplyError};
pub use protocol::{Decoder, Frame, ProtocolError, Request, ResponseError};
pub use server::{Server, ServerConfig, ServerHandle};
pub use serving::ServingIndex;
