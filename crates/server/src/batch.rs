//! A persistent worker pool that fans batched distance queries across
//! threads while preserving request order.
//!
//! [`SharedOracle::batch_distances`](hcl_core::SharedOracle) spawns scoped
//! threads per call — fine for one offline batch, wasteful at serving rates
//! where every connection may submit batches concurrently. The
//! [`BatchExecutor`] keeps `threads` long-lived workers (each with its own
//! [`QueryContext`]) pulling chunks from a shared channel, so concurrent
//! batches from different connections interleave on the same pool.
//!
//! Completion is asynchronous: [`submit`](BatchExecutor::submit) and
//! [`submit_query`](BatchExecutor::submit_query) take a callback that runs
//! on the worker finishing the last chunk — the reactor passes one that
//! pushes the formatted response onto its completion queue and signals its
//! eventfd, so no thread ever blocks on a batch. The blocking
//! [`execute`](BatchExecutor::execute) (offline callers, benches) is a thin
//! condvar wrapper over the same path.

use crate::metrics::ServeMetrics;
use crate::oracle_pool::{QueryError, QueryService};
use crate::serving::ServingIndex;
use hcl_core::{OracleEpoch, QueryContext};
use hcl_graph::VertexId;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Queued-query cap applied by [`BatchExecutor::new`]: enough headroom for
/// thousands of concurrent batches, small enough that a flood sheds (`ERR
/// busy`) instead of growing the worker channel without bound.
pub const DEFAULT_MAX_PENDING: usize = 1 << 16;

/// Completion callback for an asynchronously submitted batch; receives the
/// distances in input order, or [`QueryError::DeadlineExpired`] when the
/// job outlived its deadline on the queue. Runs on a worker thread.
pub type BatchCallback = Box<dyn FnOnce(Result<Vec<Option<u32>>, QueryError>) + Send + 'static>;

/// Completion callback for a single asynchronously submitted query.
pub type QueryCallback = Box<dyn FnOnce(Result<Option<u32>, QueryError>) + Send + 'static>;

/// One submitted batch: the input pairs, the index generation the whole
/// batch is answered on, the in-progress results, and the completion
/// callback.
struct BatchJob {
    pairs: Vec<(VertexId, VertexId)>,
    /// Pinned at submission: every chunk of this batch is validated and
    /// computed against this one generation, so a mid-batch hot reload can
    /// never mix epochs inside a response.
    index: Arc<OracleEpoch<ServingIndex>>,
    results: Mutex<Vec<Option<u32>>>,
    /// Chunks not yet fully computed.
    remaining: AtomicUsize,
    /// Taken exactly once, by the worker that completes the last chunk.
    on_done: Mutex<Option<BatchCallback>>,
    /// Absolute wall-clock bound: a chunk picked up past it computes
    /// nothing and the whole job resolves `DeadlineExpired`.
    deadline: Option<Instant>,
    /// Set by the first worker to observe the deadline passed.
    expired: AtomicBool,
}

/// A contiguous slice of one job, claimed by a single worker.
struct Chunk {
    job: Arc<BatchJob>,
    start: usize,
    end: usize,
}

/// The persistent batch worker pool; see the module docs.
pub struct BatchExecutor {
    service: Arc<QueryService>,
    /// `None` only during drop (disconnects the workers).
    injector: Option<mpsc::Sender<Chunk>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Queries accepted but not yet computed (shared with the workers,
    /// who decrement as chunks finish).
    depth: Arc<AtomicUsize>,
    /// Shed (`ERR busy`) any submission that would push `depth` past
    /// this; 0 disables the bound.
    max_pending: usize,
}

impl BatchExecutor {
    /// Spawns `threads` workers over `service` (0 = all cores) with the
    /// [`DEFAULT_MAX_PENDING`] overload bound.
    pub fn new(service: Arc<QueryService>, threads: usize) -> Self {
        Self::with_queue_cap(service, threads, DEFAULT_MAX_PENDING)
    }

    /// [`new`](Self::new) with an explicit queued-query cap (0 =
    /// unbounded). Submissions that would exceed it are refused with
    /// [`QueryError::Overloaded`] — typed `ERR busy` on the wire — and
    /// counted in the `shed_requests` metric, instead of growing the
    /// worker channel without bound.
    pub fn with_queue_cap(service: Arc<QueryService>, threads: usize, max_pending: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            threads
        };
        let depth = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<Chunk>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let service = Arc::clone(&service);
                let depth = Arc::clone(&depth);
                std::thread::spawn(move || {
                    let mut ctx = QueryContext::new(service.num_vertices());
                    loop {
                        // Hold the receiver lock only for the pop, not the
                        // computation.
                        let chunk = match rx.lock().expect("batch queue poisoned").recv() {
                            Ok(chunk) => chunk,
                            Err(_) => return, // executor dropped
                        };
                        Self::run_chunk(&service, &mut ctx, &chunk, &depth);
                    }
                })
            })
            .collect();
        BatchExecutor { service, injector: Some(tx), workers, threads, depth, max_pending }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Queries accepted but not yet computed.
    pub fn queued(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// The service this pool queries.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    fn run_chunk(
        service: &QueryService,
        ctx: &mut QueryContext,
        chunk: &Chunk,
        depth: &AtomicUsize,
    ) {
        let job = &chunk.job;
        // A chunk picked up past the job's deadline computes nothing, and
        // poisons the job so sibling chunks stop computing too — a queue
        // full of expired work drains at memcpy speed instead of search
        // speed.
        if job.deadline.is_some_and(|at| Instant::now() >= at)
            && !job.expired.swap(true, Ordering::AcqRel)
        {
            ServeMetrics::bump(&service.metrics().deadline_expired);
        }
        if !job.expired.load(Ordering::Acquire) {
            // Compute outside the results lock; one short splice per chunk.
            // The job's pinned generation supplies graph, labelling, and
            // cache epoch (the context self-resizes across graph sizes).
            let computed: Vec<Option<u32>> = job.pairs[chunk.start..chunk.end]
                .iter()
                .map(|&(s, t)| service.cached_distance_with(&job.index, ctx, s, t))
                .collect();
            job.results.lock().expect("batch results poisoned")[chunk.start..chunk.end]
                .copy_from_slice(&computed);
        }
        depth.fetch_sub(chunk.end - chunk.start, Ordering::AcqRel);
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let on_done =
                job.on_done.lock().expect("batch callback poisoned").take().expect("taken once");
            if job.expired.load(Ordering::Acquire) {
                on_done(Err(QueryError::DeadlineExpired));
            } else {
                let results =
                    std::mem::take(&mut *job.results.lock().expect("batch results poisoned"));
                on_done(Ok(results));
            }
        }
    }

    /// Overload gate: reserves room for `count` queries or sheds. Runs
    /// before validation so a flood is turned away at the door.
    fn admit(&self, count: usize) -> Result<(), QueryError> {
        if self.max_pending == 0 {
            self.depth.fetch_add(count, Ordering::AcqRel);
            return Ok(());
        }
        let mut current = self.depth.load(Ordering::Acquire);
        loop {
            if current + count > self.max_pending {
                ServeMetrics::bump(&self.service.metrics().shed_requests);
                return Err(QueryError::Overloaded);
            }
            match self.depth.compare_exchange_weak(
                current,
                current + count,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(seen) => current = seen,
            }
        }
    }

    /// Validates `pairs` against the index generation current at
    /// submission and fans them across the worker pool; `on_done` runs —
    /// with the distances in input order — on the worker that finishes the
    /// last chunk (inline for an empty batch). On a validation error
    /// nothing is executed, nothing is counted, and the callback is
    /// dropped unused. Callable concurrently from any number of threads;
    /// never blocks on the computation.
    pub fn submit(
        &self,
        pairs: Vec<(VertexId, VertexId)>,
        on_done: BatchCallback,
    ) -> Result<(), QueryError> {
        self.admit(pairs.len())?;
        let index = self.service.snapshot();
        for &(s, t) in &pairs {
            if let Err(e) = QueryService::check_pair_in(&index, s, t) {
                self.depth.fetch_sub(pairs.len(), Ordering::AcqRel);
                return Err(e);
            }
        }
        let metrics = self.service.metrics();
        ServeMetrics::bump(&metrics.batch_requests);
        ServeMetrics::add(&metrics.batch_queries, pairs.len() as u64);
        if pairs.is_empty() {
            on_done(Ok(Vec::new()));
            return Ok(());
        }
        self.enqueue(pairs, index, on_done);
        Ok(())
    }

    /// Single-query analogue of [`submit`](Self::submit): validated up
    /// front, counted in the `queries` metric, answered through the cache
    /// on a pooled worker. Lets the reactor keep cache-miss queries (real
    /// graph searches) off its event loop.
    pub fn submit_query(
        &self,
        s: VertexId,
        t: VertexId,
        on_done: QueryCallback,
    ) -> Result<(), QueryError> {
        self.admit(1)?;
        let index = self.service.snapshot();
        if let Err(e) = QueryService::check_pair_in(&index, s, t) {
            self.depth.fetch_sub(1, Ordering::AcqRel);
            return Err(e);
        }
        ServeMetrics::bump(&self.service.metrics().queries);
        self.enqueue(
            vec![(s, t)],
            index,
            Box::new(move |results| on_done(results.map(|r| r.first().copied().flatten()))),
        );
        Ok(())
    }

    /// Splits an already validated batch into chunks on the worker queue.
    fn enqueue(
        &self,
        pairs: Vec<(VertexId, VertexId)>,
        index: Arc<OracleEpoch<ServingIndex>>,
        on_done: BatchCallback,
    ) {
        // Over-split relative to the thread count so a slow chunk (cache
        // misses needing real searches) doesn't serialise the tail.
        let chunk_size = pairs.len().div_ceil(self.threads * 4).max(1);
        let num_chunks = pairs.len().div_ceil(chunk_size);
        let len = pairs.len();
        let job = Arc::new(BatchJob {
            pairs,
            index,
            results: Mutex::new(vec![None; len]),
            remaining: AtomicUsize::new(num_chunks),
            on_done: Mutex::new(Some(on_done)),
            deadline: self.service.request_deadline().map(|d| Instant::now() + d),
            expired: AtomicBool::new(false),
        });
        let injector = self.injector.as_ref().expect("executor not shut down");
        for i in 0..num_chunks {
            let start = i * chunk_size;
            let end = (start + chunk_size).min(len);
            injector
                .send(Chunk { job: Arc::clone(&job), start, end })
                .expect("batch workers alive while executor exists");
        }
    }

    /// Blocking wrapper over [`submit`](Self::submit): answers `pairs` in
    /// input order, waiting on a condvar for the pool to finish. For
    /// offline callers and benches — the serving path never blocks.
    pub fn execute(&self, pairs: &[(VertexId, VertexId)]) -> Result<Vec<Option<u32>>, QueryError> {
        type Cell = (Mutex<Option<Result<Vec<Option<u32>>, QueryError>>>, Condvar);
        let cell: Arc<Cell> = Arc::new((Mutex::new(None), Condvar::new()));
        let signal = Arc::clone(&cell);
        self.submit(
            pairs.to_vec(),
            Box::new(move |results| {
                *signal.0.lock().expect("batch signal poisoned") = Some(results);
                signal.1.notify_all();
            }),
        )?;
        let (lock, cvar) = &*cell;
        let mut slot = lock.lock().expect("batch signal poisoned");
        while slot.is_none() {
            slot = cvar.wait(slot).expect("batch signal poisoned");
        }
        slot.take().expect("slot filled")
    }
}

impl Drop for BatchExecutor {
    fn drop(&mut self) {
        // Disconnect the channel so workers drain outstanding chunks and
        // exit, then join them.
        self.injector = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_core::testing::ba_fixture;

    fn service(cache_capacity: usize) -> Arc<QueryService> {
        let (g, labelling) = ba_fixture(500, 4, 33, 12);
        Arc::new(QueryService::from_parts(g, labelling, cache_capacity))
    }

    fn pairs(count: usize, n: u32) -> Vec<(u32, u32)> {
        (0..count as u32).map(|i| ((i * 7) % n, (i * 13 + 1) % n)).collect()
    }

    #[test]
    fn matches_sequential_in_order() {
        let service = service(0);
        let pairs = pairs(997, 500);
        let expect = service.snapshot().index().batch_distances(&pairs, 1);
        for threads in [1usize, 2, 4, 8] {
            let executor = BatchExecutor::new(Arc::clone(&service), threads);
            assert_eq!(executor.execute(&pairs).unwrap(), expect, "threads {threads}");
        }
    }

    #[test]
    fn empty_batch() {
        let executor = BatchExecutor::new(service(0), 2);
        assert!(executor.execute(&[]).unwrap().is_empty());
    }

    #[test]
    fn rejects_out_of_range_without_executing() {
        let service = service(0);
        let executor = BatchExecutor::new(Arc::clone(&service), 2);
        let err = executor.execute(&[(0, 1), (0, 500)]).unwrap_err();
        assert_eq!(err, QueryError::VertexOutOfRange { vertex: 500, n: 500 });
        // Validation happens before any work or accounting.
        assert_eq!(service.metrics_snapshot().batch_requests, 0);
        assert_eq!(service.metrics_snapshot().batch_queries, 0);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let service = service(1 << 12);
        let executor = Arc::new(BatchExecutor::new(Arc::clone(&service), 4));
        let expect = service.snapshot().index().batch_distances(&pairs(400, 500), 1);
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let executor = Arc::clone(&executor);
                let expect = expect.clone();
                scope.spawn(move || {
                    for _ in 0..5 {
                        assert_eq!(executor.execute(&pairs(400, 500)).unwrap(), expect);
                    }
                });
            }
        });
        let snap = service.metrics_snapshot();
        assert_eq!(snap.batch_requests, 30);
        assert_eq!(snap.batch_queries, 30 * 400);
    }

    #[test]
    fn batches_span_one_epoch_across_a_reload() {
        use hcl_core::SharedOracle;

        let service = service(1 << 10);
        let executor = BatchExecutor::new(Arc::clone(&service), 2);
        let pairs = pairs(300, 500);
        let before = executor.execute(&pairs).unwrap();

        // Swap to a different graph of the same size; whole batches flip.
        let (g, labelling) = ba_fixture(500, 4, 99, 12);
        let new_oracle = SharedOracle::new(g, labelling);
        let expect_new = new_oracle.batch_distances(&pairs, 1);
        assert_eq!(service.reload(new_oracle), 1);

        let after = executor.execute(&pairs).unwrap();
        assert_eq!(after, expect_new, "post-reload batches answer on the new index");
        assert_ne!(after, before, "the two fixture graphs must differ on this stream");
    }

    #[test]
    fn async_submit_delivers_via_callback_and_matches_execute() {
        use std::sync::mpsc;

        let service = service(0);
        let executor = BatchExecutor::new(Arc::clone(&service), 2);
        let pairs = pairs(200, 500);
        let expect = executor.execute(&pairs).unwrap();

        let (tx, rx) = mpsc::channel();
        executor.submit(pairs.clone(), Box::new(move |results| tx.send(results).unwrap())).unwrap();
        let got = rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
        assert_eq!(got.unwrap(), expect);

        // Validation failures surface synchronously; the callback is dropped.
        let (tx, rx) = mpsc::channel::<Result<Vec<Option<u32>>, QueryError>>();
        let err = executor.submit(vec![(0, 999)], Box::new(move |r| tx.send(r).unwrap()));
        assert!(err.is_err());
        assert!(rx.recv().is_err(), "callback must never fire on a rejected batch");
    }

    #[test]
    fn async_single_queries_count_in_the_query_metric() {
        use std::sync::mpsc;

        let service = service(64);
        let executor = BatchExecutor::new(Arc::clone(&service), 2);
        let offline = service.snapshot().index().batch_distances(&[(1, 42)], 1)[0];

        let (tx, rx) = mpsc::channel();
        executor.submit_query(1, 42, Box::new(move |d| tx.send(d).unwrap())).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap().unwrap(), offline);

        assert!(executor.submit_query(0, 500, Box::new(|_| panic!("must not run"))).is_err());

        let snap = service.metrics_snapshot();
        assert_eq!(snap.queries, 1, "one accepted single query");
        assert_eq!(snap.batch_requests, 0, "single queries are not batches");
    }

    #[test]
    fn oversized_submission_sheds_with_busy() {
        let service = service(0);
        let executor = BatchExecutor::with_queue_cap(Arc::clone(&service), 1, 2);
        // Within the cap: served normally.
        assert!(executor.execute(&pairs(2, 500)).is_ok());
        // One more pair than the cap can ever hold: shed at the door.
        let err = executor.execute(&pairs(3, 500)).unwrap_err();
        assert_eq!(err, QueryError::Overloaded);
        assert_eq!(err.to_string(), "busy", "wire form is `ERR busy`");
        let snap = service.metrics_snapshot();
        assert_eq!(snap.shed_requests, 1);
        assert_eq!(snap.batch_requests, 1, "the shed batch was never counted as accepted");
        assert_eq!(executor.queued(), 0, "shed submissions leave no depth behind");
    }

    #[test]
    fn zero_deadline_expires_queued_work() {
        let service = service(0);
        service.set_request_deadline(Some(std::time::Duration::ZERO));
        let executor = BatchExecutor::new(Arc::clone(&service), 2);
        let err = executor.execute(&pairs(50, 500)).unwrap_err();
        assert_eq!(err, QueryError::DeadlineExpired);
        assert_eq!(err.to_string(), "deadline expired");
        let snap = service.metrics_snapshot();
        assert_eq!(snap.deadline_expired, 1, "counted once per job, not per chunk");
        // Disabling the deadline restores normal service.
        service.set_request_deadline(None);
        assert!(executor.execute(&pairs(50, 500)).is_ok());
    }

    #[test]
    fn batches_with_cache_agree_with_no_cache() {
        let cached = BatchExecutor::new(service(1 << 10), 3);
        let uncached = BatchExecutor::new(service(0), 3);
        let pairs = pairs(600, 500);
        let a = cached.execute(&pairs).unwrap();
        let b = uncached.execute(&pairs).unwrap();
        assert_eq!(a, b);
        // Second submission is served mostly from cache — still identical.
        assert_eq!(cached.execute(&pairs).unwrap(), a);
        assert!(cached.service().cache_stats().hits > 0);
    }
}
