//! The single-threaded epoll reactor driving every connection.
//!
//! One thread owns the listener, every client socket, and an eventfd, all
//! registered in one (level-triggered) epoll set. The accept gate,
//! read/decode loop, ordered settle, and idle/drain expiry live in the
//! shared [`ClientDriver`](crate::transport::ClientDriver); this module
//! supplies the serving policy through
//! [`DriverHooks`](crate::transport::DriverHooks): frames become response
//! slots, and computation goes to the [`BatchExecutor`] worker pool.
//! Workers never touch a socket: they push the formatted response onto
//! the [`CompletionQueue`] and signal the eventfd, and the reactor writes
//! it out in request order on its next pass. Thread count is therefore
//! fixed — one reactor plus the worker pool — regardless of how many
//! connections are open.
//!
//! Timers (idle timeout, shutdown drain grace, accept backoff) are epoll
//! timeouts computed from the nearest deadline; with no deadline pending
//! the reactor blocks indefinitely. There is no polling interval and no
//! self-connect wakeup: shutdown, like every other cross-thread signal, is
//! one eventfd write.

use crate::metrics::ServeMetrics;
use crate::protocol::{self, Frame};
use crate::server::{Shared, UpdateJob};
use crate::transport::conn::Conn;
use crate::transport::driver::{
    deadline_to_timeout_ms, ClientDriver, DriverConfig, DriverHooks, TOKEN_LISTENER, TOKEN_WAKE,
};
use crate::transport::sys::{Epoll, EpollEvent, EventFd};
use hcl_core::update::EdgeEdit;
use std::io;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// First connection id, above the listener and wake tokens.
const FIRST_CONN_ID: u64 = 2;

/// Most `UPDATE`s allowed to park on the busy gate at once; past this the
/// request is shed with `ERR busy` (overload protection, same contract as
/// the worker queue cap).
const MAX_PENDING_UPDATES: usize = 1024;

/// Drains the pending-update queue, applying edits one at a time in
/// arrival order. The caller must have just acquired the busy gate
/// (`reload_busy` swapped `false` → `true`); the gate is released when the
/// queue is empty, with a lost-wakeup re-check — a producer that saw the
/// gate busy after our last pop parks its job and spawns nobody, so the
/// releasing thread must re-acquire and keep draining if anything is left.
fn drain_updates_holding_gate(shared: Arc<Shared>) {
    loop {
        // Clears the gate when this scope exits, even on a panic inside
        // apply_update.
        struct Gate(Arc<Shared>);
        impl Drop for Gate {
            fn drop(&mut self) {
                self.0.reload_busy.store(false, std::sync::atomic::Ordering::Release);
            }
        }
        let gate = Gate(Arc::clone(&shared));
        loop {
            // Pop under a short lock; the apply itself runs unlocked so
            // the reactor can keep parking new jobs meanwhile.
            let job = shared.pending_updates.lock().expect("update queue poisoned").pop_front();
            let Some(job) = job else { break };
            let line = match shared.service.apply_update(job.edit) {
                Ok((epoch, affected)) => protocol::format_update_response(epoch, affected),
                Err(e) => {
                    ServeMetrics::bump(&shared.service.metrics().errors);
                    protocol::format_error(e)
                }
            };
            shared.queue.push(Completion { conn: job.conn, seq: job.seq, line });
        }
        drop(gate);
        if shared.pending_updates.lock().expect("update queue poisoned").is_empty()
            || shared.reload_busy.swap(true, std::sync::atomic::Ordering::AcqRel)
        {
            return;
        }
    }
}

/// Gate-release hook shared by everything that holds the busy gate for
/// non-update work (a `RELOAD` thread): after releasing, pick up any
/// `UPDATE`s that parked while the gate was held.
fn drain_parked_updates(shared: &Arc<Shared>) {
    if shared.pending_updates.lock().expect("update queue poisoned").is_empty() {
        return;
    }
    if shared.reload_busy.swap(true, std::sync::atomic::Ordering::AcqRel) {
        return;
    }
    drain_updates_holding_gate(Arc::clone(shared));
}

/// One finished unit of asynchronous work, addressed to a response slot.
pub(crate) struct Completion {
    pub conn: u64,
    pub seq: u64,
    pub line: String,
}

/// The channel from worker/reload threads back into the reactor: a locked
/// vector plus the eventfd that wakes the epoll wait. Also the shutdown
/// wakeup (a bare [`wake`](Self::wake) with the flag already flipped).
pub(crate) struct CompletionQueue {
    items: Mutex<Vec<Completion>>,
    wake: EventFd,
}

impl CompletionQueue {
    pub fn new() -> io::Result<CompletionQueue> {
        Ok(CompletionQueue { items: Mutex::new(Vec::new()), wake: EventFd::new()? })
    }

    /// Queues a completion and wakes the reactor.
    pub fn push(&self, completion: Completion) {
        self.items.lock().expect("completion queue poisoned").push(completion);
        self.wake.signal();
    }

    /// Wakes the reactor without queueing anything (shutdown).
    pub fn wake(&self) {
        self.wake.signal();
    }

    fn drain_into(&self, out: &mut Vec<Completion>) {
        out.append(&mut *self.items.lock().expect("completion queue poisoned"));
    }

    fn wake_fd(&self) -> std::os::fd::RawFd {
        self.wake.raw()
    }

    fn clear_signal(&self) {
        self.wake.drain();
    }
}

/// The serving policy plugged into the shared connection driver.
struct ServerHooks {
    shared: Arc<Shared>,
}

impl ServerHooks {
    /// Builds the single-line JSON body of a `METRICS` response.
    fn metrics_json(&self) -> String {
        let service = &self.shared.service;
        let m = service.metrics_snapshot();
        let cache = service.cache_stats();
        let sizes = service.index_sizes();
        format!(
            "{{\"role\":\"server\",\"epoch\":{},\"queries\":{},\"batch_requests\":{},\
             \"batch_queries\":{},\"connections\":{},\"active_connections\":{},\
             \"rejected_connections\":{},\"timed_out_connections\":{},\"errors\":{},\
             \"shed_requests\":{},\"deadline_expired\":{},\
             \"reloads\":{},\"updates_applied\":{},\"update_affected_vertices\":{},\
             \"merge_ns\":{},\"search_ns\":{},\"searched_queries\":{},\
             \"load_us\":{},\"index_bytes\":{},\"sparse_bytes\":{},\
             \"store_bytes\":{},\"cache_hits\":{},\"cache_misses\":{},\"cache_entries\":{},\
             \"max_connections\":{},\"idle_timeout_ms\":{},\"drain_grace_ms\":{}}}",
            service.epoch(),
            m.queries,
            m.batch_requests,
            m.batch_queries,
            m.connections,
            m.active_connections,
            m.rejected_connections,
            m.timed_out_connections,
            m.errors,
            m.shed_requests,
            m.deadline_expired,
            m.reloads,
            m.updates_applied,
            m.update_affected_vertices,
            m.merge_ns,
            m.search_ns,
            m.searched_queries,
            service.last_load_micros(),
            sizes.index_bytes,
            sizes.sparse_bytes,
            sizes.store_bytes,
            cache.hits,
            cache.misses,
            cache.entries,
            self.shared.config.max_connections,
            self.shared.config.idle_timeout.as_millis(),
            self.shared.config.drain_grace.as_millis(),
        )
    }
}

impl DriverHooks for ServerHooks {
    /// Dispatches one decoded frame: inline responses fill their slot now,
    /// work goes to the executor (or a reload thread) with a completion
    /// keyed to this connection.
    fn on_frame(&mut self, _epoll: &Epoll, conn: &mut Conn, id: u64, frame: Frame) {
        let shared = &self.shared;
        let metrics = shared.service.metrics();
        match frame {
            Frame::Ping => conn.push_ready("PONG".to_string()),
            Frame::Epoch => {
                conn.push_ready(protocol::format_epoch_response(shared.service.epoch()));
            }
            Frame::Stats => {
                let snapshot = shared.service.metrics_snapshot();
                let cache = shared.service.cache_stats();
                let sizes = shared.service.index_sizes();
                conn.push_ready(protocol::format_stats_response(
                    &snapshot,
                    &cache,
                    shared.service.epoch(),
                    &sizes,
                    shared.service.last_load_micros(),
                    shared.config.max_connections as u64,
                    shared.config.idle_timeout.as_millis() as u64,
                ));
            }
            Frame::Metrics => {
                conn.push_ready(protocol::format_metrics_response(&self.metrics_json()));
            }
            Frame::Query(s, t) => {
                let seq = conn.push_waiting();
                let queue = Arc::clone(&shared.queue);
                let owner = Arc::clone(shared);
                let submitted = shared.executor.submit_query(
                    s,
                    t,
                    Box::new(move |d| {
                        let line = match d {
                            Ok(d) => protocol::format_query_response(d),
                            // Deadline expiry: counted in deadline_expired
                            // by the executor, and as an error response.
                            Err(e) => {
                                ServeMetrics::bump(&owner.service.metrics().errors);
                                protocol::format_error(e)
                            }
                        };
                        queue.push(Completion { conn: id, seq, line });
                    }),
                );
                if let Err(e) = submitted {
                    ServeMetrics::bump(&metrics.errors);
                    conn.complete(seq, protocol::format_error(e));
                }
            }
            Frame::Batch(pairs) => {
                let seq = conn.push_waiting();
                let queue = Arc::clone(&shared.queue);
                let owner = Arc::clone(shared);
                let submitted = shared.executor.submit(
                    pairs,
                    Box::new(move |distances| {
                        let line = match distances {
                            Ok(distances) => protocol::format_batch_response(&distances),
                            Err(e) => {
                                ServeMetrics::bump(&owner.service.metrics().errors);
                                protocol::format_error(e)
                            }
                        };
                        queue.push(Completion { conn: id, seq, line });
                    }),
                );
                if let Err(e) = submitted {
                    ServeMetrics::bump(&metrics.errors);
                    conn.complete(seq, protocol::format_error(e));
                }
            }
            Frame::Reload { graph, index } => {
                // Loading/rebuilding is far too slow for the reactor; a
                // short-lived thread does it and completes like a worker.
                // Every other connection keeps serving the old epoch until
                // the final pointer swap. At most one reload runs at a
                // time — the gate refuses the rest so a pipelined RELOAD
                // flood cannot fan out into concurrent full-index builds.
                let seq = conn.push_waiting();
                if shared.reload_busy.swap(true, std::sync::atomic::Ordering::AcqRel) {
                    ServeMetrics::bump(&metrics.errors);
                    conn.complete(seq, protocol::format_error("reload already in progress"));
                } else {
                    let queue = Arc::clone(&shared.queue);
                    let shared = Arc::clone(shared);
                    std::thread::spawn(move || {
                        // Clears the gate when the thread exits, even on a
                        // panic inside the load/build.
                        struct Gate(Arc<Shared>);
                        impl Drop for Gate {
                            fn drop(&mut self) {
                                self.0
                                    .reload_busy
                                    .store(false, std::sync::atomic::Ordering::Release);
                            }
                        }
                        let gate = Gate(Arc::clone(&shared));
                        let line = match shared.service.reload_from_paths(
                            &graph,
                            index.as_deref(),
                            shared.config.reload_landmarks,
                        ) {
                            Ok(epoch) => protocol::format_reload_response(epoch),
                            Err(e) => {
                                ServeMetrics::bump(&shared.service.metrics().errors);
                                protocol::format_error(e)
                            }
                        };
                        // Release the gate before the response is visible:
                        // a client that pipelines its next RELOAD right
                        // after reading this line must not race the drop.
                        drop(gate);
                        queue.push(Completion { conn: id, seq, line });
                        // UPDATEs that arrived during the reload parked
                        // themselves; apply them now the gate is free.
                        drain_parked_updates(&shared);
                    });
                }
            }
            Frame::Update { add, u, v } => {
                // An incremental edit is orders of magnitude cheaper than
                // a rebuild but still index-sized work, so it runs
                // off-reactor, serialised with RELOAD through the same
                // busy gate. Unlike RELOAD, concurrent and pipelined
                // UPDATEs queue instead of being refused: each is applied
                // in arrival order and publishes its own epoch.
                let seq = conn.push_waiting();
                let edit = if add { EdgeEdit::Add(u, v) } else { EdgeEdit::Delete(u, v) };
                {
                    let mut pending = shared.pending_updates.lock().expect("update queue poisoned");
                    if pending.len() >= MAX_PENDING_UPDATES {
                        drop(pending);
                        ServeMetrics::bump(&metrics.shed_requests);
                        conn.complete(seq, protocol::format_error("busy"));
                        return;
                    }
                    pending.push_back(UpdateJob { edit, conn: id, seq });
                }
                if !shared.reload_busy.swap(true, std::sync::atomic::Ordering::AcqRel) {
                    let shared = Arc::clone(shared);
                    std::thread::spawn(move || drain_updates_holding_gate(shared));
                }
            }
            Frame::Shutdown => {
                conn.push_ready("BYE".to_string());
                conn.draining = true;
                shared.begin_shutdown();
            }
            Frame::Invalid(e) => {
                ServeMetrics::bump(&metrics.errors);
                conn.push_ready(protocol::format_error(e));
            }
            Frame::Corrupt(e) => {
                ServeMetrics::bump(&metrics.errors);
                conn.push_ready(protocol::format_error(e));
                conn.draining = true;
            }
        }
    }

    fn on_accepted(&mut self) {
        let metrics = self.shared.service.metrics();
        ServeMetrics::bump(&metrics.connections);
        ServeMetrics::bump(&metrics.active_connections);
    }

    fn on_rejected(&mut self) {
        ServeMetrics::bump(&self.shared.service.metrics().rejected_connections);
    }

    fn on_reaped(&mut self) {
        ServeMetrics::bump(&self.shared.service.metrics().timed_out_connections);
    }

    fn on_closed(&mut self) {
        ServeMetrics::drop_one(&self.shared.service.metrics().active_connections);
    }
}

/// The event loop; owned by the one reactor thread.
pub(crate) struct Reactor {
    epoll: Epoll,
    driver: ClientDriver,
    hooks: ServerHooks,
}

impl Reactor {
    /// Registers the listener and wake fd; the listener must already be
    /// nonblocking.
    pub fn new(shared: Arc<Shared>, listener: TcpListener) -> io::Result<Reactor> {
        let epoll = Epoll::new()?;
        epoll.add(shared.queue.wake_fd(), crate::transport::sys::EPOLLIN, TOKEN_WAKE)?;
        let driver = ClientDriver::new(
            &epoll,
            listener,
            FIRST_CONN_ID,
            DriverConfig {
                max_connections: shared.config.max_connections,
                idle_timeout: shared.config.idle_timeout,
                drain_grace: shared.config.drain_grace,
                // A server completion can legitimately take minutes (a
                // RELOAD rebuild), so the exemption stays unbounded here;
                // the router, whose completions have a retry budget,
                // bounds it.
                completion_deadline: None,
                capacity_line: "ERR server at connection capacity\n",
            },
        )?;
        Ok(Reactor { epoll, driver, hooks: ServerHooks { shared } })
    }

    /// Runs until shutdown has begun and every connection has drained.
    pub fn run(mut self) {
        let mut events = vec![EpollEvent::default(); 256];
        let mut completions: Vec<Completion> = Vec::new();
        loop {
            let timeout = deadline_to_timeout_ms(self.driver.next_deadline());
            let fired = self.epoll.wait(&mut events, timeout).unwrap_or_default();
            let now = Instant::now();
            for event in &events[..fired] {
                // Copy out of the (packed) event before use.
                let (token, bits) = (event.data, event.events);
                match token {
                    TOKEN_LISTENER => self.driver.accept_ready(&self.epoll, now, &mut self.hooks),
                    TOKEN_WAKE => self.hooks.shared.queue.clear_signal(),
                    id => self.driver.conn_event(&self.epoll, id, bits, now, &mut self.hooks),
                }
            }
            self.hooks.shared.queue.drain_into(&mut completions);
            for completion in completions.drain(..) {
                self.driver.complete(
                    &self.epoll,
                    completion.conn,
                    completion.seq,
                    completion.line,
                    now,
                    &mut self.hooks,
                );
            }
            if self.hooks.shared.shutting_down() && !self.driver.is_draining() {
                self.driver.begin_drain(&self.epoll, now, &mut self.hooks);
            }
            self.driver.expire(&self.epoll, now, &mut self.hooks);
            if self.driver.is_drained() {
                return;
            }
        }
    }
}

/// Wires a [`Reactor`] onto a (nonblocking) listener and runs it on the
/// one serving thread. Registration happens before the spawn so setup
/// errors surface from `Server::bind`.
pub(crate) fn spawn(
    shared: Arc<Shared>,
    listener: TcpListener,
) -> io::Result<std::thread::JoinHandle<()>> {
    let reactor = Reactor::new(shared, listener)?;
    Ok(std::thread::spawn(move || reactor.run()))
}
