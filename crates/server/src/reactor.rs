//! The single-threaded epoll reactor driving every connection.
//!
//! One thread owns the listener, every client socket, and an eventfd, all
//! registered in one (level-triggered) epoll set. Sockets are nonblocking;
//! the reactor reads fragments into the incremental
//! [`Decoder`](crate::protocol::Decoder), turns frames into response slots
//! on the connection, and hands computation to the [`BatchExecutor`]
//! worker pool. Workers never touch a socket: they push the formatted
//! response onto the [`CompletionQueue`] and signal the eventfd, and the
//! reactor writes it out in request order on its next pass. Thread count
//! is therefore fixed — one reactor plus the worker pool — regardless of
//! how many connections are open.
//!
//! Timers (idle timeout, shutdown drain grace, accept backoff) are epoll
//! timeouts computed from the nearest deadline; with no deadline pending
//! the reactor blocks indefinitely. There is no polling interval and no
//! self-connect wakeup: shutdown, like every other cross-thread signal, is
//! one eventfd write.

use crate::metrics::ServeMetrics;
use crate::protocol::{self, Frame};
use crate::server::Shared;
use crate::transport::conn::Conn;
use crate::transport::sys::{self, Epoll, EpollEvent, EventFd};
use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// epoll token for the listener.
const TOKEN_LISTENER: u64 = 0;
/// epoll token for the completion-queue eventfd.
const TOKEN_WAKE: u64 = 1;
/// First connection id; ids are never reused, so a completion for a
/// closed connection just misses the map.
const FIRST_CONN_ID: u64 = 2;

/// Reads the reactor performs per readiness event before letting other
/// connections run (level-triggered epoll re-reports leftover data).
const MAX_READS_PER_EVENT: usize = 16;
/// Scratch read-buffer size.
const READ_CHUNK: usize = 16 * 1024;
/// How long the listener stays deregistered after a persistent accept
/// failure (e.g. fd exhaustion under a connection flood) so the reactor
/// doesn't busy-spin on a level-triggered error.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// One finished unit of asynchronous work, addressed to a response slot.
pub(crate) struct Completion {
    pub conn: u64,
    pub seq: u64,
    pub line: String,
}

/// The channel from worker/reload threads back into the reactor: a locked
/// vector plus the eventfd that wakes the epoll wait. Also the shutdown
/// wakeup (a bare [`wake`](Self::wake) with the flag already flipped).
pub(crate) struct CompletionQueue {
    items: Mutex<Vec<Completion>>,
    wake: EventFd,
}

impl CompletionQueue {
    pub fn new() -> io::Result<CompletionQueue> {
        Ok(CompletionQueue { items: Mutex::new(Vec::new()), wake: EventFd::new()? })
    }

    /// Queues a completion and wakes the reactor.
    pub fn push(&self, completion: Completion) {
        self.items.lock().expect("completion queue poisoned").push(completion);
        self.wake.signal();
    }

    /// Wakes the reactor without queueing anything (shutdown).
    pub fn wake(&self) {
        self.wake.signal();
    }

    fn drain_into(&self, out: &mut Vec<Completion>) {
        out.append(&mut *self.items.lock().expect("completion queue poisoned"));
    }

    fn wake_fd(&self) -> std::os::fd::RawFd {
        self.wake.raw()
    }

    fn clear_signal(&self) {
        self.wake.drain();
    }
}

/// The event loop; owned by the one reactor thread.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    epoll: Epoll,
    /// `None` once shutdown has begun (the port closes immediately) or
    /// while accept errors are backing off.
    listener: Option<TcpListener>,
    /// Set while the listener is parked after a persistent accept error.
    relisten_at: Option<Instant>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
    scratch: Vec<u8>,
}

impl Reactor {
    /// Registers the listener and wake fd; the listener must already be
    /// nonblocking.
    pub fn new(shared: Arc<Shared>, listener: TcpListener) -> io::Result<Reactor> {
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(shared.queue.wake_fd(), sys::EPOLLIN, TOKEN_WAKE)?;
        Ok(Reactor {
            shared,
            epoll,
            listener: Some(listener),
            relisten_at: None,
            conns: HashMap::new(),
            next_id: FIRST_CONN_ID,
            draining: false,
            drain_deadline: None,
            scratch: vec![0u8; READ_CHUNK],
        })
    }

    /// Runs until shutdown has begun and every connection has drained.
    pub fn run(mut self) {
        let mut events = vec![EpollEvent::default(); 256];
        let mut completions: Vec<Completion> = Vec::new();
        loop {
            let timeout = self.poll_timeout();
            let fired = self.epoll.wait(&mut events, timeout).unwrap_or_default();
            let now = Instant::now();
            for event in &events[..fired] {
                // Copy out of the (packed) event before use.
                let (token, bits) = (event.data, event.events);
                match token {
                    TOKEN_LISTENER => self.accept_ready(now),
                    TOKEN_WAKE => self.shared.queue.clear_signal(),
                    id => self.conn_event(id, bits, now),
                }
            }
            self.shared.queue.drain_into(&mut completions);
            for completion in completions.drain(..) {
                self.apply_completion(completion, now);
            }
            if self.shared.shutting_down() && !self.draining {
                self.begin_drain(now);
            }
            self.expire(now);
            if self.draining && self.conns.is_empty() {
                return;
            }
        }
    }

    /// Milliseconds until the nearest deadline, or −1 to block forever.
    fn poll_timeout(&self) -> i32 {
        let mut deadline: Option<Instant> = self.drain_deadline;
        if let Some(at) = self.relisten_at {
            deadline = Some(deadline.map_or(at, |d| d.min(at)));
        }
        let idle = self.shared.config.idle_timeout;
        if !idle.is_zero() && !self.draining {
            // Mirror the expire() filter: a connection awaiting its own
            // in-flight work is exempt from the idle deadline, so its
            // (possibly past) deadline must not drive the poll timeout.
            let soonest = self
                .conns
                .values()
                .filter(|c| !c.awaiting_completions())
                .map(|c| c.last_activity + idle)
                .min();
            if let Some(soonest) = soonest {
                deadline = Some(deadline.map_or(soonest, |d| d.min(soonest)));
            }
        }
        match deadline {
            // +1ms so the wakeup lands at-or-after the deadline, not a
            // hair before it (which would spin once).
            Some(at) => {
                let ms = at.saturating_duration_since(Instant::now()).as_millis() as i64 + 1;
                ms.min(i32::MAX as i64) as i32
            }
            None => -1,
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        let metrics = self.shared.service.metrics();
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= self.shared.config.max_connections {
                        ServeMetrics::bump(&metrics.rejected_connections);
                        // Best-effort courtesy line; the close is the
                        // real signal.
                        let _ = stream.set_nonblocking(true);
                        use std::io::Write;
                        let _ = (&stream).write(b"ERR server at connection capacity\n");
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let id = self.next_id;
                    self.next_id += 1;
                    let mut conn = Conn::new(stream, now);
                    let interest = conn.desired_interest();
                    if self.epoll.add(conn.stream.as_raw_fd(), interest, id).is_err() {
                        continue;
                    }
                    conn.registered = interest;
                    ServeMetrics::bump(&metrics.connections);
                    ServeMetrics::bump(&metrics.active_connections);
                    self.conns.insert(id, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Persistent accept failure: park the listener briefly
                    // instead of spinning on a level-triggered error.
                    let listener = self.listener.take().expect("listener present");
                    let _ = self.epoll.delete(listener.as_raw_fd());
                    self.listener = Some(listener);
                    self.relisten_at = Some(now + ACCEPT_BACKOFF);
                    return;
                }
            }
        }
    }

    fn conn_event(&mut self, id: u64, bits: u32, now: Instant) {
        let Some(mut conn) = self.conns.remove(&id) else { return };
        let mut alive = true;
        if bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
            alive = self.read_and_decode(&mut conn, id, now);
        }
        if alive {
            alive = self.settle(&mut conn, id, now);
        }
        if alive {
            self.conns.insert(id, conn);
        } else {
            self.destroy(conn);
        }
    }

    /// Reads available bytes, decodes frames, dispatches them. Returns
    /// `false` when the connection is already unusable (read error).
    fn read_and_decode(&mut self, conn: &mut Conn, id: u64, now: Instant) -> bool {
        for _ in 0..MAX_READS_PER_EVENT {
            if !conn.wants_read() {
                break;
            }
            match conn.try_read(&mut self.scratch) {
                Ok(Some(0)) => {
                    // Peer EOF: what was received still gets answered
                    // (including a trailing unterminated line), then the
                    // connection drains and closes.
                    conn.decoder.finish();
                    conn.draining = true;
                }
                Ok(Some(n)) => {
                    conn.last_activity = now;
                    conn.decoder.feed(&self.scratch[..n]);
                }
                Ok(None) => break,
                Err(_) => return false,
            }
            while let Some(frame) = conn.decoder.next_frame() {
                self.handle_frame(conn, id, frame);
                if conn.draining {
                    break;
                }
            }
            if conn.draining {
                break;
            }
            conn.promote_ready();
            conn.update_backpressure();
        }
        // A drain (EOF / SHUTDOWN / corrupt framing) may leave final
        // frames decoded but unprocessed only when `draining` stopped the
        // loop — the decoder is either dead or empty then, nothing is
        // lost.
        true
    }

    /// Dispatches one decoded frame: inline responses fill their slot now,
    /// work goes to the executor (or a reload thread) with a completion
    /// keyed to this connection.
    fn handle_frame(&self, conn: &mut Conn, id: u64, frame: Frame) {
        let shared = &self.shared;
        let metrics = shared.service.metrics();
        match frame {
            Frame::Ping => conn.push_ready("PONG".to_string()),
            Frame::Epoch => {
                conn.push_ready(protocol::format_epoch_response(shared.service.epoch()));
            }
            Frame::Stats => {
                let snapshot = shared.service.metrics_snapshot();
                let cache = shared.service.cache_stats();
                let sizes = shared.service.index_sizes();
                conn.push_ready(protocol::format_stats_response(
                    &snapshot,
                    &cache,
                    shared.service.epoch(),
                    &sizes,
                    shared.service.last_load_micros(),
                ));
            }
            Frame::Query(s, t) => {
                let seq = conn.push_waiting();
                let queue = Arc::clone(&shared.queue);
                let submitted = shared.executor.submit_query(
                    s,
                    t,
                    Box::new(move |d| {
                        queue.push(Completion {
                            conn: id,
                            seq,
                            line: protocol::format_query_response(d),
                        });
                    }),
                );
                if let Err(e) = submitted {
                    ServeMetrics::bump(&metrics.errors);
                    conn.complete(seq, protocol::format_error(e));
                }
            }
            Frame::Batch(pairs) => {
                let seq = conn.push_waiting();
                let queue = Arc::clone(&shared.queue);
                let submitted = shared.executor.submit(
                    pairs,
                    Box::new(move |distances| {
                        queue.push(Completion {
                            conn: id,
                            seq,
                            line: protocol::format_batch_response(&distances),
                        });
                    }),
                );
                if let Err(e) = submitted {
                    ServeMetrics::bump(&metrics.errors);
                    conn.complete(seq, protocol::format_error(e));
                }
            }
            Frame::Reload { graph, index } => {
                // Loading/rebuilding is far too slow for the reactor; a
                // short-lived thread does it and completes like a worker.
                // Every other connection keeps serving the old epoch until
                // the final pointer swap. At most one reload runs at a
                // time — the gate refuses the rest so a pipelined RELOAD
                // flood cannot fan out into concurrent full-index builds.
                let seq = conn.push_waiting();
                if shared.reload_busy.swap(true, std::sync::atomic::Ordering::AcqRel) {
                    ServeMetrics::bump(&metrics.errors);
                    conn.complete(seq, protocol::format_error("reload already in progress"));
                } else {
                    let queue = Arc::clone(&shared.queue);
                    let shared = Arc::clone(shared);
                    std::thread::spawn(move || {
                        // Clears the gate when the thread exits, even on a
                        // panic inside the load/build.
                        struct Gate(Arc<Shared>);
                        impl Drop for Gate {
                            fn drop(&mut self) {
                                self.0
                                    .reload_busy
                                    .store(false, std::sync::atomic::Ordering::Release);
                            }
                        }
                        let _gate = Gate(Arc::clone(&shared));
                        let line = match shared.service.reload_from_paths(
                            &graph,
                            index.as_deref(),
                            shared.config.reload_landmarks,
                        ) {
                            Ok(epoch) => protocol::format_reload_response(epoch),
                            Err(e) => {
                                ServeMetrics::bump(&shared.service.metrics().errors);
                                protocol::format_error(e)
                            }
                        };
                        queue.push(Completion { conn: id, seq, line });
                    });
                }
            }
            Frame::Shutdown => {
                conn.push_ready("BYE".to_string());
                conn.draining = true;
                shared.begin_shutdown();
            }
            Frame::Invalid(e) => {
                ServeMetrics::bump(&metrics.errors);
                conn.push_ready(protocol::format_error(e));
            }
            Frame::Corrupt(e) => {
                ServeMetrics::bump(&metrics.errors);
                conn.push_ready(protocol::format_error(e));
                conn.draining = true;
            }
        }
    }

    /// Promotes/flushes responses and re-syncs epoll interest. Returns
    /// `false` when the connection should be closed.
    fn settle(&mut self, conn: &mut Conn, id: u64, now: Instant) -> bool {
        conn.promote_ready();
        if conn.write_pending() > 0 {
            match conn.try_write() {
                Ok(written) => {
                    if written > 0 {
                        conn.last_activity = now;
                    }
                }
                Err(_) => return false,
            }
        }
        conn.update_backpressure();
        if conn.draining && !conn.has_work() {
            return false;
        }
        let want = conn.desired_interest();
        if want != conn.registered && self.epoll.modify(conn.stream.as_raw_fd(), want, id).is_err()
        {
            return false;
        }
        conn.registered = want;
        true
    }

    fn apply_completion(&mut self, completion: Completion, now: Instant) {
        let Some(mut conn) = self.conns.remove(&completion.conn) else {
            return; // connection closed while the work was in flight
        };
        let id = completion.conn;
        conn.complete(completion.seq, completion.line);
        if self.settle(&mut conn, id, now) {
            self.conns.insert(id, conn);
        } else {
            self.destroy(conn);
        }
    }

    /// Stops accepting, closes the port, and puts every connection into
    /// draining: outstanding requests finish, buffers flush, then each
    /// socket closes. `drain_grace` bounds how long a stuck client can
    /// hold this up.
    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_deadline = Some(now + self.shared.config.drain_grace);
        self.relisten_at = None;
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
        }
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(mut conn) = self.conns.remove(&id) else { continue };
            conn.draining = true;
            if self.settle(&mut conn, id, now) {
                self.conns.insert(id, conn);
            } else {
                self.destroy(conn);
            }
        }
    }

    /// Fires timer-driven transitions: accept-backoff expiry, idle
    /// timeouts, and the shutdown drain deadline.
    fn expire(&mut self, now: Instant) {
        if let Some(at) = self.relisten_at {
            if now >= at && !self.draining {
                self.relisten_at = None;
                if let Some(listener) = &self.listener {
                    let _ = self.epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER);
                }
            }
        }
        if self.draining {
            if self.drain_deadline.is_some_and(|at| now >= at) {
                // Grace expired: force-close whatever is left.
                for (_, conn) in std::mem::take(&mut self.conns) {
                    self.destroy(conn);
                }
            }
            return;
        }
        let idle = self.shared.config.idle_timeout;
        if idle.is_zero() {
            return;
        }
        // A connection waiting on its own in-flight work (e.g. a slow
        // RELOAD rebuild) shows no socket progress through no fault of the
        // client — only reap when nothing is pending server-side.
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                now.saturating_duration_since(c.last_activity) >= idle && !c.awaiting_completions()
            })
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            if let Some(conn) = self.conns.remove(&id) {
                ServeMetrics::bump(&self.shared.service.metrics().timed_out_connections);
                self.destroy(conn);
            }
        }
    }

    /// Deregisters and drops a connection (the close happens on drop).
    fn destroy(&mut self, conn: Conn) {
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        ServeMetrics::drop_one(&self.shared.service.metrics().active_connections);
        drop(conn);
    }
}

/// Wires a [`Reactor`] onto a (nonblocking) listener and runs it on the
/// one serving thread. Registration happens before the spawn so setup
/// errors surface from `Server::bind`.
pub(crate) fn spawn(
    shared: Arc<Shared>,
    listener: TcpListener,
) -> io::Result<std::thread::JoinHandle<()>> {
    let reactor = Reactor::new(shared, listener)?;
    Ok(std::thread::spawn(move || reactor.run()))
}
