//! The `hcl-serve` wire protocol: newline-delimited UTF-8 text, one
//! response line per request.
//!
//! ```text
//! -> QUERY <s> <t>          <- DIST <d>|INF
//! -> BATCH <k>              (followed by k lines "<s> <t>")
//!                           <- DISTS <d1> <d2> … <dk>   (INF for unreachable)
//! -> STATS                  <- STATS key=value key=value …
//! -> PING                   <- PONG
//! -> EPOCH                  <- EPOCH <e>  (current index generation)
//! -> RELOAD <graph> [<idx>] <- RELOADED <e>  (hot index swap; paths are
//!                              server-side and must not contain spaces)
//! -> SHUTDOWN               <- BYE       (server then drains and stops)
//! ```
//!
//! Any malformed request line gets `ERR <message>` and the connection stays
//! usable. Both codec directions live here so the server, the bundled
//! client, and tests share one definition.

use crate::cache::CacheStats;
use crate::metrics::MetricsSnapshot;
use hcl_graph::VertexId;

/// Largest `k` a `BATCH` request may declare; guards the server against
/// one line committing it to unbounded allocation.
pub const MAX_BATCH: usize = 1 << 20;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `QUERY s t` — one exact distance.
    Query(VertexId, VertexId),
    /// `BATCH k` — `k` pair lines follow.
    Batch(usize),
    /// `STATS` — serving counters.
    Stats,
    /// `PING` — liveness probe.
    Ping,
    /// `EPOCH` — current index generation.
    Epoch,
    /// `RELOAD graph [index]` — hot-swap the index from server-side files.
    Reload {
        /// Path to the graph file (server-side).
        graph: String,
        /// Path to a prebuilt index file; when absent the server rebuilds
        /// the labelling from the graph.
        index: Option<String>,
    },
    /// `SHUTDOWN` — begin graceful shutdown.
    Shutdown,
}

/// A request the protocol cannot parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Blank request line.
    Empty,
    /// First token is not a known command.
    UnknownCommand(String),
    /// Known command with the wrong number of arguments.
    BadArity {
        /// The command name.
        command: &'static str,
        /// What the command expects, e.g. `"<s> <t>"`.
        expected: &'static str,
    },
    /// An argument that should be a number is not.
    BadNumber(String),
    /// `BATCH k` with `k` beyond [`MAX_BATCH`].
    BatchTooLarge {
        /// The declared batch size.
        requested: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty request"),
            ProtocolError::UnknownCommand(cmd) => write!(f, "unknown command {cmd:?}"),
            ProtocolError::BadArity { command, expected } => {
                write!(f, "{command} expects {expected}")
            }
            ProtocolError::BadNumber(tok) => write!(f, "not a number: {tok:?}"),
            ProtocolError::BatchTooLarge { requested } => {
                write!(f, "batch of {requested} exceeds the maximum of {MAX_BATCH}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

fn parse_num<T: std::str::FromStr>(tok: &str) -> Result<T, ProtocolError> {
    tok.parse().map_err(|_| ProtocolError::BadNumber(tok.to_string()))
}

/// Parses one request line (without its trailing newline).
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let mut tokens = line.split_ascii_whitespace();
    let command = tokens.next().ok_or(ProtocolError::Empty)?;
    let request = match command {
        "QUERY" => {
            let (Some(s), Some(t), None) = (tokens.next(), tokens.next(), tokens.next()) else {
                return Err(ProtocolError::BadArity { command: "QUERY", expected: "<s> <t>" });
            };
            Request::Query(parse_num(s)?, parse_num(t)?)
        }
        "BATCH" => {
            let (Some(k), None) = (tokens.next(), tokens.next()) else {
                return Err(ProtocolError::BadArity { command: "BATCH", expected: "<k>" });
            };
            let k: usize = parse_num(k)?;
            if k > MAX_BATCH {
                return Err(ProtocolError::BatchTooLarge { requested: k });
            }
            Request::Batch(k)
        }
        "RELOAD" => {
            let (Some(graph), index, None) = (tokens.next(), tokens.next(), tokens.next()) else {
                return Err(ProtocolError::BadArity {
                    command: "RELOAD",
                    expected: "<graph> [<index>]",
                });
            };
            Request::Reload { graph: graph.to_string(), index: index.map(str::to_string) }
        }
        "STATS" | "PING" | "EPOCH" | "SHUTDOWN" => {
            if tokens.next().is_some() {
                return Err(ProtocolError::BadArity {
                    command: match command {
                        "STATS" => "STATS",
                        "PING" => "PING",
                        "EPOCH" => "EPOCH",
                        _ => "SHUTDOWN",
                    },
                    expected: "no arguments",
                });
            }
            match command {
                "STATS" => Request::Stats,
                "PING" => Request::Ping,
                "EPOCH" => Request::Epoch,
                _ => Request::Shutdown,
            }
        }
        other => return Err(ProtocolError::UnknownCommand(other.to_string())),
    };
    Ok(request)
}

/// Parses one `"<s> <t>"` pair line of a `BATCH` body.
pub fn parse_pair(line: &str) -> Result<(VertexId, VertexId), ProtocolError> {
    let mut tokens = line.split_ascii_whitespace();
    match (tokens.next(), tokens.next(), tokens.next()) {
        (Some(s), Some(t), None) => Ok((parse_num(s)?, parse_num(t)?)),
        (None, ..) => Err(ProtocolError::Empty),
        _ => Err(ProtocolError::BadArity { command: "BATCH pair", expected: "<s> <t>" }),
    }
}

fn push_distance(out: &mut String, d: Option<u32>) {
    match d {
        Some(d) => out.push_str(&d.to_string()),
        None => out.push_str("INF"),
    }
}

/// Renders a `QUERY` response: `DIST <d>` / `DIST INF`.
pub fn format_query_response(d: Option<u32>) -> String {
    let mut out = String::from("DIST ");
    push_distance(&mut out, d);
    out
}

/// Renders a `BATCH` response: `DISTS <d1> … <dk>`.
pub fn format_batch_response(distances: &[Option<u32>]) -> String {
    let mut out = String::with_capacity(6 + distances.len() * 4);
    out.push_str("DISTS");
    for &d in distances {
        out.push(' ');
        push_distance(&mut out, d);
    }
    out
}

/// Renders the `STATS` response: one line of `key=value` pairs.
pub fn format_stats_response(metrics: &MetricsSnapshot, cache: &CacheStats, epoch: u64) -> String {
    format!(
        "STATS queries={} batch_requests={} batch_queries={} connections={} \
         active_connections={} errors={} epoch={} reloads={} cache_hits={} cache_misses={} \
         cache_stale={} cache_evictions={} cache_entries={} cache_capacity={}",
        metrics.queries,
        metrics.batch_requests,
        metrics.batch_queries,
        metrics.connections,
        metrics.active_connections,
        metrics.errors,
        epoch,
        metrics.reloads,
        cache.hits,
        cache.misses,
        cache.stale,
        cache.evictions,
        cache.entries,
        cache.capacity,
    )
}

/// Renders a successful `RELOAD` response: `RELOADED <epoch>`.
pub fn format_reload_response(epoch: u64) -> String {
    format!("RELOADED {epoch}")
}

/// Renders an `EPOCH` response: `EPOCH <epoch>`.
pub fn format_epoch_response(epoch: u64) -> String {
    format!("EPOCH {epoch}")
}

/// Renders an error response: `ERR <message>` (newlines squashed so the
/// response stays one line).
pub fn format_error(message: impl std::fmt::Display) -> String {
    format!("ERR {}", message.to_string().replace('\n', " "))
}

/// A response the client-side codec cannot interpret.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResponseError {
    /// The server replied `ERR <message>`.
    Server(String),
    /// The response line doesn't match the expected shape.
    Malformed(String),
}

impl std::fmt::Display for ResponseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResponseError::Server(msg) => write!(f, "server error: {msg}"),
            ResponseError::Malformed(line) => write!(f, "malformed response: {line:?}"),
        }
    }
}

impl std::error::Error for ResponseError {}

fn parse_distance_token(tok: &str) -> Result<Option<u32>, ResponseError> {
    if tok == "INF" {
        return Ok(None);
    }
    tok.parse().map(Some).map_err(|_| ResponseError::Malformed(tok.to_string()))
}

fn split_err(line: &str) -> Result<&str, ResponseError> {
    match line.strip_prefix("ERR ") {
        Some(msg) => Err(ResponseError::Server(msg.to_string())),
        None => Ok(line),
    }
}

/// Client side: interprets a `QUERY` response line.
pub fn parse_query_response(line: &str) -> Result<Option<u32>, ResponseError> {
    let line = split_err(line)?;
    let rest =
        line.strip_prefix("DIST ").ok_or_else(|| ResponseError::Malformed(line.to_string()))?;
    parse_distance_token(rest.trim())
}

fn parse_tagged_number(line: &str, prefix: &str) -> Result<u64, ResponseError> {
    let line = split_err(line)?;
    let rest =
        line.strip_prefix(prefix).ok_or_else(|| ResponseError::Malformed(line.to_string()))?;
    rest.trim().parse().map_err(|_| ResponseError::Malformed(line.to_string()))
}

/// Client side: interprets a `RELOAD` response line, returning the new
/// epoch.
pub fn parse_reload_response(line: &str) -> Result<u64, ResponseError> {
    parse_tagged_number(line, "RELOADED ")
}

/// Client side: interprets an `EPOCH` response line.
pub fn parse_epoch_response(line: &str) -> Result<u64, ResponseError> {
    parse_tagged_number(line, "EPOCH ")
}

/// Client side: interprets a `BATCH` response line, checking the count.
pub fn parse_batch_response(
    line: &str,
    expected: usize,
) -> Result<Vec<Option<u32>>, ResponseError> {
    let line = split_err(line)?;
    let rest =
        line.strip_prefix("DISTS").ok_or_else(|| ResponseError::Malformed(line.to_string()))?;
    let distances: Vec<Option<u32>> =
        rest.split_ascii_whitespace().map(parse_distance_token).collect::<Result<_, _>>()?;
    if distances.len() != expected {
        return Err(ResponseError::Malformed(format!(
            "expected {expected} distances, got {}",
            distances.len()
        )));
    }
    Ok(distances)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_commands() {
        assert_eq!(parse_request("QUERY 3 9"), Ok(Request::Query(3, 9)));
        assert_eq!(parse_request("  QUERY  3   9  "), Ok(Request::Query(3, 9)));
        assert_eq!(parse_request("BATCH 128"), Ok(Request::Batch(128)));
        assert_eq!(parse_request("STATS"), Ok(Request::Stats));
        assert_eq!(parse_request("PING"), Ok(Request::Ping));
        assert_eq!(parse_request("EPOCH"), Ok(Request::Epoch));
        assert_eq!(
            parse_request("RELOAD /tmp/g.hclg"),
            Ok(Request::Reload { graph: "/tmp/g.hclg".to_string(), index: None })
        );
        assert_eq!(
            parse_request("RELOAD g.hclg g.hcl"),
            Ok(Request::Reload { graph: "g.hclg".to_string(), index: Some("g.hcl".to_string()) })
        );
        assert_eq!(parse_request("SHUTDOWN"), Ok(Request::Shutdown));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert_eq!(parse_request(""), Err(ProtocolError::Empty));
        assert_eq!(parse_request("   "), Err(ProtocolError::Empty));
        assert!(matches!(parse_request("NOPE 1 2"), Err(ProtocolError::UnknownCommand(_))));
        assert!(matches!(parse_request("QUERY 1"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("QUERY 1 2 3"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("QUERY a 2"), Err(ProtocolError::BadNumber(_))));
        assert!(matches!(parse_request("QUERY -1 2"), Err(ProtocolError::BadNumber(_))));
        assert!(matches!(parse_request("BATCH"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("STATS now"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("EPOCH 3"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("RELOAD"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("RELOAD a b c"), Err(ProtocolError::BadArity { .. })));
        assert_eq!(
            parse_request(&format!("BATCH {}", MAX_BATCH + 1)),
            Err(ProtocolError::BatchTooLarge { requested: MAX_BATCH + 1 })
        );
    }

    #[test]
    fn pair_lines() {
        assert_eq!(parse_pair("4 7"), Ok((4, 7)));
        assert_eq!(parse_pair(""), Err(ProtocolError::Empty));
        assert!(matches!(parse_pair("4"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_pair("4 7 9"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_pair("4 x"), Err(ProtocolError::BadNumber(_))));
    }

    #[test]
    fn response_round_trips() {
        assert_eq!(parse_query_response(&format_query_response(Some(12))), Ok(Some(12)));
        assert_eq!(parse_query_response(&format_query_response(None)), Ok(None));
        let batch = vec![Some(0), None, Some(7)];
        assert_eq!(parse_batch_response(&format_batch_response(&batch), 3), Ok(batch));
        assert_eq!(parse_batch_response(&format_batch_response(&[]), 0), Ok(vec![]));
        assert_eq!(parse_reload_response(&format_reload_response(3)), Ok(3));
        assert_eq!(parse_epoch_response(&format_epoch_response(0)), Ok(0));
        assert!(parse_reload_response("RELOADED x").is_err());
        assert!(parse_epoch_response(&format_reload_response(1)).is_err());
    }

    #[test]
    fn error_responses_surface_server_side_messages() {
        let line = format_error("vertex 9 out of range");
        assert_eq!(
            parse_query_response(&line),
            Err(ResponseError::Server("vertex 9 out of range".to_string()))
        );
        assert!(parse_batch_response(&line, 1).is_err());
        assert!(parse_query_response("GARBAGE").is_err());
        assert_eq!(
            parse_batch_response("DISTS 1 2", 3),
            Err(ResponseError::Malformed("expected 3 distances, got 2".to_string()))
        );
    }

    #[test]
    fn stats_line_is_parseable_key_values() {
        let line = format_stats_response(&MetricsSnapshot::default(), &CacheStats::default(), 4);
        let body = line.strip_prefix("STATS ").unwrap();
        for kv in body.split_ascii_whitespace() {
            let (k, v) = kv.split_once('=').expect("key=value");
            assert!(!k.is_empty());
            let _: u64 = v.parse().expect("numeric value");
        }
        assert!(body.contains("epoch=4"));
        assert!(body.contains("reloads=0"));
        assert!(body.contains("cache_stale=0"));
    }
}
