//! The `hcl-serve` wire protocol: newline-delimited UTF-8 text, one
//! response line per request.
//!
//! ```text
//! -> QUERY <s> <t>          <- DIST <d>|INF
//! -> BATCH <k>              (followed by k lines "<s> <t>")
//!                           <- DISTS <d1> <d2> … <dk>   (INF for unreachable)
//! -> STATS                  <- STATS key=value key=value …
//! -> METRICS                <- METRICS {json}  (machine-readable state)
//! -> PING                   <- PONG
//! -> EPOCH                  <- EPOCH <e>  (current index generation)
//! -> RELOAD <graph> [<idx>] <- RELOADED <e>  (hot index swap; paths are
//!                              server-side and must not contain spaces)
//! -> UPDATE ADD <u> <v>     <- UPDATED <e> <a>  (incremental edge insert;
//! -> UPDATE DEL <u> <v>        e = new epoch, a = affected vertices)
//! -> SHUTDOWN               <- BYE       (server then drains and stops)
//! ```
//!
//! A router may answer a distance request **degraded** — `DIST~` /
//! `DISTS~` instead of `DIST` / `DISTS` — when a shard had no healthy
//! replica and the answer is the landmark upper bound from another
//! shard's replica (still never an under-report). The client-side parsers
//! accept both forms; the `*_tagged` variants surface the flag.
//!
//! Any malformed request line gets `ERR <message>` and the connection stays
//! usable. Both codec directions live here so the server, the bundled
//! client, and tests share one definition.
//!
//! Server-side parsing is *incremental*: the [`Decoder`] consumes whatever
//! byte fragments the transport hands it — partial lines, many lines at
//! once, `BATCH` bodies split anywhere — and yields complete [`Frame`]s. It
//! never assumes a blocking `read_line` and it bounds memory against
//! oversized-line attacks ([`MAX_LINE_BYTES`]).

use crate::cache::CacheStats;
use crate::metrics::MetricsSnapshot;
use crate::oracle_pool::IndexSizes;
use hcl_graph::VertexId;

/// Largest `k` a `BATCH` request may declare; guards the server against
/// one line committing it to unbounded allocation.
pub const MAX_BATCH: usize = 1 << 20;

/// Longest request line the [`Decoder`] will buffer. The longest *valid*
/// line (`RELOAD <path> <path>`) is far under this; anything near the cap
/// is a client streaming garbage, and buffering it unboundedly would let
/// one connection grow server memory without limit.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `QUERY s t` — one exact distance.
    Query(VertexId, VertexId),
    /// `BATCH k` — `k` pair lines follow.
    Batch(usize),
    /// `STATS` — serving counters.
    Stats,
    /// `METRICS` — machine-readable (JSON) process state.
    Metrics,
    /// `PING` — liveness probe.
    Ping,
    /// `EPOCH` — current index generation.
    Epoch,
    /// `RELOAD graph [index]` — hot-swap the index from server-side files.
    Reload {
        /// Path to the graph file (server-side).
        graph: String,
        /// Path to a prebuilt index file; when absent the server rebuilds
        /// the labelling from the graph.
        index: Option<String>,
    },
    /// `UPDATE ADD|DEL u v` — incrementally patch the serving index for
    /// one edge edit (no rebuild; publishes a new epoch).
    Update {
        /// `true` for `ADD`, `false` for `DEL`.
        add: bool,
        /// One edge endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// `SHUTDOWN` — begin graceful shutdown.
    Shutdown,
}

/// A request the protocol cannot parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// Blank request line.
    Empty,
    /// First token is not a known command.
    UnknownCommand(String),
    /// Known command with the wrong number of arguments.
    BadArity {
        /// The command name.
        command: &'static str,
        /// What the command expects, e.g. `"<s> <t>"`.
        expected: &'static str,
    },
    /// An argument that should be a number is not.
    BadNumber(String),
    /// `BATCH k` with `k` beyond [`MAX_BATCH`].
    BatchTooLarge {
        /// The declared batch size.
        requested: usize,
    },
    /// A request line that exceeds the decoder's byte limit before any
    /// newline arrives (only the [`Decoder`] produces this).
    LineTooLong {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty request"),
            ProtocolError::UnknownCommand(cmd) => write!(f, "unknown command {cmd:?}"),
            ProtocolError::BadArity { command, expected } => {
                write!(f, "{command} expects {expected}")
            }
            ProtocolError::BadNumber(tok) => write!(f, "not a number: {tok:?}"),
            ProtocolError::BatchTooLarge { requested } => {
                write!(f, "batch of {requested} exceeds the maximum of {MAX_BATCH}")
            }
            ProtocolError::LineTooLong { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

fn parse_num<T: std::str::FromStr>(tok: &str) -> Result<T, ProtocolError> {
    tok.parse().map_err(|_| ProtocolError::BadNumber(tok.to_string()))
}

/// Parses one request line (without its trailing newline).
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let mut tokens = line.split_ascii_whitespace();
    let command = tokens.next().ok_or(ProtocolError::Empty)?;
    let request = match command {
        "QUERY" => {
            let (Some(s), Some(t), None) = (tokens.next(), tokens.next(), tokens.next()) else {
                return Err(ProtocolError::BadArity { command: "QUERY", expected: "<s> <t>" });
            };
            Request::Query(parse_num(s)?, parse_num(t)?)
        }
        "BATCH" => {
            let (Some(k), None) = (tokens.next(), tokens.next()) else {
                return Err(ProtocolError::BadArity { command: "BATCH", expected: "<k>" });
            };
            let k: usize = parse_num(k)?;
            if k > MAX_BATCH {
                return Err(ProtocolError::BatchTooLarge { requested: k });
            }
            Request::Batch(k)
        }
        "RELOAD" => {
            let (Some(graph), index, None) = (tokens.next(), tokens.next(), tokens.next()) else {
                return Err(ProtocolError::BadArity {
                    command: "RELOAD",
                    expected: "<graph> [<index>]",
                });
            };
            Request::Reload { graph: graph.to_string(), index: index.map(str::to_string) }
        }
        "UPDATE" => {
            let (Some(op), Some(u), Some(v), None) =
                (tokens.next(), tokens.next(), tokens.next(), tokens.next())
            else {
                return Err(ProtocolError::BadArity {
                    command: "UPDATE",
                    expected: "ADD|DEL <u> <v>",
                });
            };
            let add = match op {
                "ADD" => true,
                "DEL" => false,
                _ => {
                    return Err(ProtocolError::BadArity {
                        command: "UPDATE",
                        expected: "ADD|DEL <u> <v>",
                    })
                }
            };
            Request::Update { add, u: parse_num(u)?, v: parse_num(v)? }
        }
        "STATS" | "METRICS" | "PING" | "EPOCH" | "SHUTDOWN" => {
            if tokens.next().is_some() {
                return Err(ProtocolError::BadArity {
                    command: match command {
                        "STATS" => "STATS",
                        "METRICS" => "METRICS",
                        "PING" => "PING",
                        "EPOCH" => "EPOCH",
                        _ => "SHUTDOWN",
                    },
                    expected: "no arguments",
                });
            }
            match command {
                "STATS" => Request::Stats,
                "METRICS" => Request::Metrics,
                "PING" => Request::Ping,
                "EPOCH" => Request::Epoch,
                _ => Request::Shutdown,
            }
        }
        other => return Err(ProtocolError::UnknownCommand(other.to_string())),
    };
    Ok(request)
}

/// Parses one `"<s> <t>"` pair line of a `BATCH` body.
pub fn parse_pair(line: &str) -> Result<(VertexId, VertexId), ProtocolError> {
    let mut tokens = line.split_ascii_whitespace();
    match (tokens.next(), tokens.next(), tokens.next()) {
        (Some(s), Some(t), None) => Ok((parse_num(s)?, parse_num(t)?)),
        (None, ..) => Err(ProtocolError::Empty),
        _ => Err(ProtocolError::BadArity { command: "BATCH pair", expected: "<s> <t>" }),
    }
}

/// One complete unit of work decoded from the byte stream. Unlike
/// [`Request`], a batch frame carries its whole body — the [`Decoder`]
/// swallows the `k` pair lines — so the transport layer never needs to
/// know that `BATCH` spans multiple lines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// One exact distance request.
    Query(VertexId, VertexId),
    /// A fully collected batch body (possibly empty: `BATCH 0`).
    Batch(Vec<(VertexId, VertexId)>),
    /// Serving counters request.
    Stats,
    /// Machine-readable process-state request.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Current index generation request.
    Epoch,
    /// Hot index swap request.
    Reload {
        /// Path to the graph file (server-side).
        graph: String,
        /// Optional path to a prebuilt index file.
        index: Option<String>,
    },
    /// Incremental edge-edit request.
    Update {
        /// `true` for `ADD`, `false` for `DEL`.
        add: bool,
        /// One edge endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Graceful-shutdown request.
    Shutdown,
    /// A malformed request: answer one `ERR` line, keep the connection.
    /// For a bad batch body this arrives only after the whole declared
    /// body has been consumed, so the framing cannot desync.
    Invalid(ProtocolError),
    /// Unrecoverable framing (an unhonourable `BATCH` header whose
    /// undelimited body may be in flight, an oversized line, a body
    /// truncated by EOF): answer one `ERR` line, then close. The decoder
    /// discards all further input.
    Corrupt(ProtocolError),
}

/// State of a batch body being collected across fragments.
#[derive(Debug)]
struct PartialBatch {
    expected: usize,
    seen: usize,
    pairs: Vec<(VertexId, VertexId)>,
    /// First body error; the remaining declared lines are still consumed
    /// so one `ERR` answers the whole batch and the next line after the
    /// body is parsed as a request again.
    error: Option<ProtocolError>,
}

/// Incremental, fragment-tolerant request decoder; see the module docs.
///
/// Feed arbitrary byte slices with [`feed`](Self::feed), then drain
/// complete frames with [`next_frame`](Self::next_frame) until it
/// returns `None`. At
/// end of input call [`finish`](Self::finish) and drain once more: a
/// trailing unterminated line still parses (matching `BufRead` semantics)
/// and a batch truncated mid-body surfaces as [`Frame::Corrupt`].
///
/// Memory is bounded: a line may buffer at most the configured limit
/// before [`Frame::Corrupt`] fires, and once a corrupt frame has been
/// emitted all further input is discarded without buffering.
///
/// # Examples
///
/// ```
/// use hcl_server::{Decoder, Frame};
///
/// let mut decoder = Decoder::new();
/// // Fragments may split anywhere — even inside a BATCH body.
/// decoder.feed(b"PING\nBATCH 2\n1 2\n");
/// assert_eq!(decoder.next_frame(), Some(Frame::Ping));
/// assert_eq!(decoder.next_frame(), None, "batch body incomplete");
/// decoder.feed(b"3 4\n");
/// assert_eq!(decoder.next_frame(), Some(Frame::Batch(vec![(1, 2), (3, 4)])));
/// ```
#[derive(Debug)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Prefix of `buf` already consumed as complete lines. Lines advance
    /// this offset instead of shifting the buffer; [`feed`](Self::feed)
    /// compacts once per fragment, so each byte is moved O(1) times no
    /// matter how many lines one fragment contains.
    start: usize,
    /// Prefix of `buf` already scanned for a newline (avoids rescans;
    /// always ≥ `start`).
    scanned: usize,
    batch: Option<PartialBatch>,
    /// Set after a corrupt frame: discard everything from then on.
    dead: bool,
    eof: bool,
    max_line: usize,
}

impl Default for Decoder {
    fn default() -> Self {
        Decoder::new()
    }
}

impl Decoder {
    /// A decoder with the standard [`MAX_LINE_BYTES`] line limit.
    pub fn new() -> Decoder {
        Decoder::with_max_line(MAX_LINE_BYTES)
    }

    /// A decoder with a custom line limit (tests).
    pub fn with_max_line(max_line: usize) -> Decoder {
        Decoder {
            buf: Vec::new(),
            start: 0,
            scanned: 0,
            batch: None,
            dead: false,
            eof: false,
            max_line,
        }
    }

    /// Appends a fragment of the byte stream. Input after a corrupt frame
    /// is dropped, not buffered.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.dead {
            return;
        }
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.scanned -= self.start;
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Signals end of input: the next [`next_frame`](Self::next_frame)
    /// calls flush a trailing unterminated line and report a truncated
    /// batch body.
    pub fn finish(&mut self) {
        self.eof = true;
    }

    /// Unconsumed bytes currently buffered (tests assert the memory bound
    /// with this).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether a corrupt frame has been emitted (the connection should be
    /// closed once its `ERR` is flushed).
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Yields the next complete frame, or `None` until more input (or
    /// [`finish`](Self::finish)) arrives. (Named to avoid colliding with
    /// `Iterator::next` — a decoder is fed between drains, which iterator
    /// adapters would hide.)
    pub fn next_frame(&mut self) -> Option<Frame> {
        loop {
            if self.dead {
                return None;
            }
            match self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                Some(i) => {
                    let end = self.scanned + i;
                    // The limit applies to terminated lines too, or the
                    // verdict on an oversized line would depend on whether
                    // its newline arrived in the same fragment.
                    if end - self.start > self.max_line {
                        self.poison();
                        return Some(Frame::Corrupt(ProtocolError::LineTooLong {
                            limit: self.max_line,
                        }));
                    }
                    let line = trim_line(&self.buf[self.start..end]);
                    self.start = end + 1;
                    self.scanned = self.start;
                    if let Some(frame) = self.consume_line(&line) {
                        if matches!(frame, Frame::Corrupt(_)) {
                            self.poison();
                        }
                        return Some(frame);
                    }
                }
                None => {
                    self.scanned = self.buf.len();
                    if self.buffered() > self.max_line {
                        self.poison();
                        return Some(Frame::Corrupt(ProtocolError::LineTooLong {
                            limit: self.max_line,
                        }));
                    }
                    if self.eof {
                        return self.flush_eof();
                    }
                    return None;
                }
            }
        }
    }

    fn poison(&mut self) {
        self.dead = true;
        self.batch = None;
        self.buf = Vec::new();
        self.start = 0;
        self.scanned = 0;
    }

    /// EOF reached with no newline pending: parse the trailing line (if
    /// any), then fail a batch left incomplete.
    fn flush_eof(&mut self) -> Option<Frame> {
        if self.buffered() > 0 {
            let line = trim_line(&std::mem::take(&mut self.buf)[self.start..]);
            self.start = 0;
            self.scanned = 0;
            if let Some(frame) = self.consume_line(&line) {
                if matches!(frame, Frame::Corrupt(_)) {
                    self.poison();
                }
                return Some(frame);
            }
        }
        if self.batch.is_some() {
            self.poison();
            return Some(Frame::Corrupt(ProtocolError::BadArity {
                command: "BATCH",
                expected: "k pair lines",
            }));
        }
        None
    }

    /// Routes one complete line through the request / batch-body state
    /// machine. Returns a frame when the line completes one.
    fn consume_line(&mut self, line: &str) -> Option<Frame> {
        if let Some(batch) = &mut self.batch {
            match parse_pair(line) {
                Ok(pair) => {
                    if batch.error.is_none() {
                        batch.pairs.push(pair);
                    }
                }
                Err(e) => {
                    if batch.error.is_none() {
                        batch.error = Some(e);
                    }
                }
            }
            batch.seen += 1;
            if batch.seen == batch.expected {
                let done = self.batch.take().expect("batch state present");
                return Some(match done.error {
                    Some(e) => Frame::Invalid(e),
                    None => Frame::Batch(done.pairs),
                });
            }
            return None;
        }
        match parse_request(line) {
            Ok(Request::Batch(0)) => Some(Frame::Batch(Vec::new())),
            Ok(Request::Batch(k)) => {
                // Cap the preallocation: `k` is client-controlled.
                let cap = k.min(4096);
                self.batch = Some(PartialBatch {
                    expected: k,
                    seen: 0,
                    pairs: Vec::with_capacity(cap),
                    error: None,
                });
                None
            }
            Ok(Request::Query(s, t)) => Some(Frame::Query(s, t)),
            Ok(Request::Stats) => Some(Frame::Stats),
            Ok(Request::Metrics) => Some(Frame::Metrics),
            Ok(Request::Ping) => Some(Frame::Ping),
            Ok(Request::Epoch) => Some(Frame::Epoch),
            Ok(Request::Reload { graph, index }) => Some(Frame::Reload { graph, index }),
            Ok(Request::Update { add, u, v }) => Some(Frame::Update { add, u, v }),
            Ok(Request::Shutdown) => Some(Frame::Shutdown),
            Err(e) => {
                // A rejected BATCH header (oversized or unparseable k) may
                // have an undelimited body already in flight that cannot be
                // skipped — unrecoverable framing, close after the ERR.
                if line.trim_start().starts_with("BATCH") {
                    Some(Frame::Corrupt(e))
                } else {
                    Some(Frame::Invalid(e))
                }
            }
        }
    }
}

/// Strips trailing `\r` / `\n` and decodes lossily, matching what the old
/// blocking reader did with `read_until` output.
fn trim_line(bytes: &[u8]) -> String {
    let mut end = bytes.len();
    while end > 0 && matches!(bytes[end - 1], b'\n' | b'\r') {
        end -= 1;
    }
    String::from_utf8_lossy(&bytes[..end]).into_owned()
}

fn push_distance(out: &mut String, d: Option<u32>) {
    match d {
        Some(d) => out.push_str(&d.to_string()),
        None => out.push_str("INF"),
    }
}

/// Renders a `QUERY` response: `DIST <d>` / `DIST INF`.
pub fn format_query_response(d: Option<u32>) -> String {
    format_query_response_tagged(d, false)
}

/// Renders a `QUERY` response, `DIST~` (degraded upper bound) when
/// `approx` is set.
pub fn format_query_response_tagged(d: Option<u32>, approx: bool) -> String {
    let mut out = String::from(if approx { "DIST~ " } else { "DIST " });
    push_distance(&mut out, d);
    out
}

/// Renders a `BATCH` response: `DISTS <d1> … <dk>`.
pub fn format_batch_response(distances: &[Option<u32>]) -> String {
    format_batch_response_tagged(distances, false)
}

/// Renders a `BATCH` response, `DISTS~` (degraded upper bounds) when
/// `approx` is set.
pub fn format_batch_response_tagged(distances: &[Option<u32>], approx: bool) -> String {
    let mut out = String::with_capacity(7 + distances.len() * 4);
    out.push_str(if approx { "DISTS~" } else { "DISTS" });
    for &d in distances {
        out.push(' ');
        push_distance(&mut out, d);
    }
    out
}

/// Renders a `METRICS` response around a single-line JSON body.
pub fn format_metrics_response(json: &str) -> String {
    format!("METRICS {json}")
}

/// Renders the `STATS` response: one line of `key=value` pairs.
/// `sizes` describes the index generation currently serving (labelling
/// bytes plus the sparsified-view CSR the query path traverses;
/// `store_bytes`/`plain_index_bytes` describe the packed on-disk format —
/// 0 / the projected plain size when serving from memory). `load_us` is
/// the wall-clock microseconds of the last disk reload.
/// `max_connections`/`idle_timeout_ms` echo the serving configuration.
/// All values are unsigned integers so router aggregation can combine
/// them per key (counters sum; epochs min; gauges and config values keep
/// a max or first value — see `hcl-router`'s aggregation classes).
pub fn format_stats_response(
    metrics: &MetricsSnapshot,
    cache: &CacheStats,
    epoch: u64,
    sizes: &IndexSizes,
    load_us: u64,
    max_connections: u64,
    idle_timeout_ms: u64,
) -> String {
    format!(
        "STATS queries={} batch_requests={} batch_queries={} connections={} \
         active_connections={} rejected_connections={} timed_out_connections={} errors={} \
         shed_requests={} deadline_expired={} \
         epoch={} reloads={} updates_applied={} update_affected_vertices={} \
         index_bytes={} sparse_bytes={} sparse_edges={} \
         sparse_relabelled=1 rank_lane_bytes={} dist_lane_bytes={} store_bytes={} \
         plain_index_bytes={} load_us={} max_connections={} idle_timeout_ms={} cache_hits={} \
         cache_misses={} cache_stale={} cache_evictions={} cache_entries={} cache_capacity={}",
        metrics.queries,
        metrics.batch_requests,
        metrics.batch_queries,
        metrics.connections,
        metrics.active_connections,
        metrics.rejected_connections,
        metrics.timed_out_connections,
        metrics.errors,
        metrics.shed_requests,
        metrics.deadline_expired,
        epoch,
        metrics.reloads,
        metrics.updates_applied,
        metrics.update_affected_vertices,
        sizes.index_bytes,
        sizes.sparse_bytes,
        sizes.sparse_edges,
        sizes.rank_lane_bytes,
        sizes.dist_lane_bytes,
        sizes.store_bytes,
        sizes.plain_index_bytes,
        load_us,
        max_connections,
        idle_timeout_ms,
        cache.hits,
        cache.misses,
        cache.stale,
        cache.evictions,
        cache.entries,
        cache.capacity,
    )
}

/// Renders a successful `RELOAD` response: `RELOADED <epoch>`.
pub fn format_reload_response(epoch: u64) -> String {
    format!("RELOADED {epoch}")
}

/// Renders a successful `UPDATE` response: `UPDATED <epoch> <affected>`
/// (the epoch the patched index was published as, and how many vertices
/// had a landmark distance change — 0 for a no-op edit such as inserting
/// an edge between equidistant vertices).
pub fn format_update_response(epoch: u64, affected: u64) -> String {
    format!("UPDATED {epoch} {affected}")
}

/// Renders an `EPOCH` response: `EPOCH <epoch>`.
pub fn format_epoch_response(epoch: u64) -> String {
    format!("EPOCH {epoch}")
}

/// Renders an error response: `ERR <message>` (newlines squashed so the
/// response stays one line).
pub fn format_error(message: impl std::fmt::Display) -> String {
    format!("ERR {}", message.to_string().replace('\n', " "))
}

/// A response the client-side codec cannot interpret.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResponseError {
    /// The server replied `ERR <message>`.
    Server(String),
    /// The response line doesn't match the expected shape.
    Malformed(String),
}

impl std::fmt::Display for ResponseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResponseError::Server(msg) => write!(f, "server error: {msg}"),
            ResponseError::Malformed(line) => write!(f, "malformed response: {line:?}"),
        }
    }
}

impl std::error::Error for ResponseError {}

fn parse_distance_token(tok: &str) -> Result<Option<u32>, ResponseError> {
    if tok == "INF" {
        return Ok(None);
    }
    tok.parse().map(Some).map_err(|_| ResponseError::Malformed(tok.to_string()))
}

fn split_err(line: &str) -> Result<&str, ResponseError> {
    match line.strip_prefix("ERR ") {
        Some(msg) => Err(ResponseError::Server(msg.to_string())),
        None => Ok(line),
    }
}

/// Client side: interprets a `QUERY` response line, accepting both the
/// exact (`DIST`) and degraded (`DIST~`) forms.
pub fn parse_query_response(line: &str) -> Result<Option<u32>, ResponseError> {
    parse_query_response_tagged(line).map(|(d, _)| d)
}

/// Client side: interprets a `QUERY` response line, surfacing whether the
/// answer was degraded (`DIST~` — an upper bound, not guaranteed exact).
pub fn parse_query_response_tagged(line: &str) -> Result<(Option<u32>, bool), ResponseError> {
    let line = split_err(line)?;
    let (rest, approx) = if let Some(rest) = line.strip_prefix("DIST~ ") {
        (rest, true)
    } else if let Some(rest) = line.strip_prefix("DIST ") {
        (rest, false)
    } else {
        return Err(ResponseError::Malformed(line.to_string()));
    };
    Ok((parse_distance_token(rest.trim())?, approx))
}

fn parse_tagged_number(line: &str, prefix: &str) -> Result<u64, ResponseError> {
    let line = split_err(line)?;
    let rest =
        line.strip_prefix(prefix).ok_or_else(|| ResponseError::Malformed(line.to_string()))?;
    rest.trim().parse().map_err(|_| ResponseError::Malformed(line.to_string()))
}

/// Client side: interprets a `RELOAD` response line, returning the new
/// epoch.
pub fn parse_reload_response(line: &str) -> Result<u64, ResponseError> {
    parse_tagged_number(line, "RELOADED ")
}

/// Client side: interprets an `UPDATE` response line, returning
/// `(epoch, affected_vertices)`.
pub fn parse_update_response(line: &str) -> Result<(u64, u64), ResponseError> {
    let line = split_err(line)?;
    let rest =
        line.strip_prefix("UPDATED ").ok_or_else(|| ResponseError::Malformed(line.to_string()))?;
    let mut tokens = rest.split_ascii_whitespace();
    match (tokens.next(), tokens.next(), tokens.next()) {
        (Some(epoch), Some(affected), None) => {
            let parse = |tok: &str| {
                tok.parse::<u64>().map_err(|_| ResponseError::Malformed(line.to_string()))
            };
            Ok((parse(epoch)?, parse(affected)?))
        }
        _ => Err(ResponseError::Malformed(line.to_string())),
    }
}

/// Client side: interprets an `EPOCH` response line.
pub fn parse_epoch_response(line: &str) -> Result<u64, ResponseError> {
    parse_tagged_number(line, "EPOCH ")
}

/// Client side: interprets a `BATCH` response line, checking the count.
/// Accepts both the exact (`DISTS`) and degraded (`DISTS~`) forms.
pub fn parse_batch_response(
    line: &str,
    expected: usize,
) -> Result<Vec<Option<u32>>, ResponseError> {
    parse_batch_response_tagged(line, expected).map(|(d, _)| d)
}

/// Client side: interprets a `BATCH` response line, surfacing whether the
/// answers were degraded (`DISTS~` — upper bounds, not guaranteed exact).
pub fn parse_batch_response_tagged(
    line: &str,
    expected: usize,
) -> Result<(Vec<Option<u32>>, bool), ResponseError> {
    let line = split_err(line)?;
    let (rest, approx) = if let Some(rest) = line.strip_prefix("DISTS~") {
        (rest, true)
    } else if let Some(rest) = line.strip_prefix("DISTS") {
        (rest, false)
    } else {
        return Err(ResponseError::Malformed(line.to_string()));
    };
    let distances: Vec<Option<u32>> =
        rest.split_ascii_whitespace().map(parse_distance_token).collect::<Result<_, _>>()?;
    if distances.len() != expected {
        return Err(ResponseError::Malformed(format!(
            "expected {expected} distances, got {}",
            distances.len()
        )));
    }
    Ok((distances, approx))
}

/// Client side: interprets a `METRICS` response line, returning the raw
/// JSON body.
pub fn parse_metrics_response(line: &str) -> Result<String, ResponseError> {
    let line = split_err(line)?;
    line.strip_prefix("METRICS ")
        .map(str::to_string)
        .ok_or_else(|| ResponseError::Malformed(line.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_commands() {
        assert_eq!(parse_request("QUERY 3 9"), Ok(Request::Query(3, 9)));
        assert_eq!(parse_request("  QUERY  3   9  "), Ok(Request::Query(3, 9)));
        assert_eq!(parse_request("BATCH 128"), Ok(Request::Batch(128)));
        assert_eq!(parse_request("STATS"), Ok(Request::Stats));
        assert_eq!(parse_request("METRICS"), Ok(Request::Metrics));
        assert_eq!(parse_request("PING"), Ok(Request::Ping));
        assert_eq!(parse_request("EPOCH"), Ok(Request::Epoch));
        assert_eq!(
            parse_request("RELOAD /tmp/g.hclg"),
            Ok(Request::Reload { graph: "/tmp/g.hclg".to_string(), index: None })
        );
        assert_eq!(
            parse_request("RELOAD g.hclg g.hcl"),
            Ok(Request::Reload { graph: "g.hclg".to_string(), index: Some("g.hcl".to_string()) })
        );
        assert_eq!(parse_request("UPDATE ADD 3 9"), Ok(Request::Update { add: true, u: 3, v: 9 }));
        assert_eq!(parse_request("UPDATE DEL 9 3"), Ok(Request::Update { add: false, u: 9, v: 3 }));
        assert_eq!(parse_request("SHUTDOWN"), Ok(Request::Shutdown));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert_eq!(parse_request(""), Err(ProtocolError::Empty));
        assert_eq!(parse_request("   "), Err(ProtocolError::Empty));
        assert!(matches!(parse_request("NOPE 1 2"), Err(ProtocolError::UnknownCommand(_))));
        assert!(matches!(parse_request("QUERY 1"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("QUERY 1 2 3"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("QUERY a 2"), Err(ProtocolError::BadNumber(_))));
        assert!(matches!(parse_request("QUERY -1 2"), Err(ProtocolError::BadNumber(_))));
        assert!(matches!(parse_request("BATCH"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("STATS now"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("METRICS all"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("EPOCH 3"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("RELOAD"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("RELOAD a b c"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("UPDATE"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("UPDATE ADD 1"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("UPDATE ADD 1 2 3"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("UPDATE SET 1 2"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_request("UPDATE ADD x 2"), Err(ProtocolError::BadNumber(_))));
        assert_eq!(
            parse_request(&format!("BATCH {}", MAX_BATCH + 1)),
            Err(ProtocolError::BatchTooLarge { requested: MAX_BATCH + 1 })
        );
    }

    #[test]
    fn pair_lines() {
        assert_eq!(parse_pair("4 7"), Ok((4, 7)));
        assert_eq!(parse_pair(""), Err(ProtocolError::Empty));
        assert!(matches!(parse_pair("4"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_pair("4 7 9"), Err(ProtocolError::BadArity { .. })));
        assert!(matches!(parse_pair("4 x"), Err(ProtocolError::BadNumber(_))));
    }

    #[test]
    fn response_round_trips() {
        assert_eq!(parse_query_response(&format_query_response(Some(12))), Ok(Some(12)));
        assert_eq!(parse_query_response(&format_query_response(None)), Ok(None));
        let batch = vec![Some(0), None, Some(7)];
        assert_eq!(parse_batch_response(&format_batch_response(&batch), 3), Ok(batch));
        assert_eq!(parse_batch_response(&format_batch_response(&[]), 0), Ok(vec![]));
        assert_eq!(parse_reload_response(&format_reload_response(3)), Ok(3));
        assert_eq!(parse_epoch_response(&format_epoch_response(0)), Ok(0));
        assert_eq!(parse_update_response(&format_update_response(5, 137)), Ok((5, 137)));
        assert!(parse_update_response("UPDATED 5").is_err());
        assert!(parse_update_response("UPDATED 5 x").is_err());
        assert!(parse_update_response(&format_reload_response(5)).is_err());
        assert!(matches!(
            parse_update_response("ERR edge 1-2 already present"),
            Err(ResponseError::Server(_))
        ));
        assert!(parse_reload_response("RELOADED x").is_err());
        assert!(parse_epoch_response(&format_reload_response(1)).is_err());
        assert_eq!(
            parse_metrics_response(&format_metrics_response("{\"role\":\"server\"}")),
            Ok("{\"role\":\"server\"}".to_string())
        );
        assert!(parse_metrics_response("PONG").is_err());
    }

    #[test]
    fn degraded_responses_round_trip_and_stay_client_compatible() {
        let line = format_query_response_tagged(Some(9), true);
        assert_eq!(line, "DIST~ 9");
        assert_eq!(parse_query_response_tagged(&line), Ok((Some(9), true)));
        // Plain parsers accept the degraded form transparently.
        assert_eq!(parse_query_response(&line), Ok(Some(9)));
        assert_eq!(
            parse_query_response_tagged(&format_query_response_tagged(None, false)),
            Ok((None, false))
        );

        let batch = vec![Some(0), None, Some(7)];
        let line = format_batch_response_tagged(&batch, true);
        assert_eq!(line, "DISTS~ 0 INF 7");
        assert_eq!(parse_batch_response_tagged(&line, 3), Ok((batch.clone(), true)));
        assert_eq!(parse_batch_response(&line, 3), Ok(batch.clone()));
        assert_eq!(
            parse_batch_response_tagged(&format_batch_response(&batch), 3),
            Ok((batch, false))
        );
        // `DIST~` never downgrades an ERR.
        assert!(parse_query_response_tagged("ERR shard 0 unavailable: x").is_err());
    }

    #[test]
    fn error_responses_surface_server_side_messages() {
        let line = format_error("vertex 9 out of range");
        assert_eq!(
            parse_query_response(&line),
            Err(ResponseError::Server("vertex 9 out of range".to_string()))
        );
        assert!(parse_batch_response(&line, 1).is_err());
        assert!(parse_query_response("GARBAGE").is_err());
        assert_eq!(
            parse_batch_response("DISTS 1 2", 3),
            Err(ResponseError::Malformed("expected 3 distances, got 2".to_string()))
        );
    }

    /// Feeds `input` in one piece and drains every frame (plus EOF).
    fn decode_all(input: &[u8]) -> Vec<Frame> {
        let mut d = Decoder::new();
        d.feed(input);
        let mut frames = Vec::new();
        while let Some(f) = d.next_frame() {
            frames.push(f);
        }
        d.finish();
        while let Some(f) = d.next_frame() {
            frames.push(f);
        }
        frames
    }

    #[test]
    fn decoder_yields_frames_across_arbitrary_fragment_boundaries() {
        let input = b"PING\nQUERY 3 9\nBATCH 2\n1 2\n3 4\nSTATS\n";
        let expect =
            vec![Frame::Ping, Frame::Query(3, 9), Frame::Batch(vec![(1, 2), (3, 4)]), Frame::Stats];
        assert_eq!(decode_all(input), expect);

        // Same stream, one byte at a time.
        let mut d = Decoder::new();
        let mut frames = Vec::new();
        for &b in input.iter() {
            d.feed(&[b]);
            while let Some(f) = d.next_frame() {
                frames.push(f);
            }
        }
        assert_eq!(frames, expect);
    }

    #[test]
    fn decoder_batch_zero_and_crlf() {
        assert_eq!(decode_all(b"BATCH 0\r\nPING\r\n"), vec![Frame::Batch(vec![]), Frame::Ping]);
    }

    #[test]
    fn decoder_bad_batch_body_consumes_whole_body_then_recovers() {
        let frames = decode_all(b"BATCH 3\n1 2\nGARBAGE\n3 4\nPING\n");
        assert_eq!(frames.len(), 2);
        assert!(matches!(frames[0], Frame::Invalid(ProtocolError::BadArity { .. })), "{frames:?}");
        assert_eq!(frames[1], Frame::Ping);
    }

    #[test]
    fn decoder_rejected_batch_header_is_corrupt_and_poisons() {
        let mut d = Decoder::new();
        d.feed(format!("BATCH {}\n0 1\nPING\n", MAX_BATCH + 1).as_bytes());
        assert!(matches!(
            d.next_frame(),
            Some(Frame::Corrupt(ProtocolError::BatchTooLarge { .. }))
        ));
        assert!(d.is_dead());
        assert_eq!(d.next_frame(), None, "everything after a corrupt frame is discarded");
        d.feed(b"PING\n");
        assert_eq!(d.buffered(), 0, "dead decoder must not buffer");
        assert_eq!(d.next_frame(), None);
    }

    #[test]
    fn decoder_truncated_batch_body_fails_cleanly_at_eof() {
        for body_lines in 0..3 {
            let mut input = b"BATCH 3\n".to_vec();
            for i in 0..body_lines {
                input.extend_from_slice(format!("{i} {i}\n").as_bytes());
            }
            let frames = decode_all(&input);
            assert_eq!(frames.len(), 1, "body_lines={body_lines}: {frames:?}");
            assert!(matches!(frames[0], Frame::Corrupt(ProtocolError::BadArity { .. })));
        }
    }

    #[test]
    fn decoder_trailing_unterminated_line_still_parses() {
        assert_eq!(decode_all(b"PING\nQUERY 1 2"), vec![Frame::Ping, Frame::Query(1, 2)]);
        // …including one that completes a batch body.
        assert_eq!(decode_all(b"BATCH 2\n1 2\n3 4"), vec![Frame::Batch(vec![(1, 2), (3, 4)])]);
    }

    #[test]
    fn decoder_rejects_oversized_lines_even_when_terminated_in_one_feed() {
        // The verdict must not depend on TCP fragmentation: a too-long
        // line whose newline arrives in the same fragment is equally
        // corrupt.
        let mut d = Decoder::with_max_line(32);
        let mut input = b"PING\n".to_vec();
        input.extend_from_slice(&[b'x'; 100]);
        input.push(b'\n');
        input.extend_from_slice(b"PING\n");
        d.feed(&input);
        assert_eq!(d.next_frame(), Some(Frame::Ping));
        assert_eq!(d.next_frame(), Some(Frame::Corrupt(ProtocolError::LineTooLong { limit: 32 })));
        assert!(d.is_dead());
        assert_eq!(d.next_frame(), None, "poisoned: the trailing PING is discarded");
    }

    #[test]
    fn decoder_oversized_line_bounds_memory_and_closes() {
        let mut d = Decoder::with_max_line(64);
        let mut corrupt = 0;
        for _ in 0..1000 {
            d.feed(&[b'x'; 16]);
            while let Some(f) = d.next_frame() {
                assert!(matches!(f, Frame::Corrupt(ProtocolError::LineTooLong { limit: 64 })));
                corrupt += 1;
            }
            assert!(d.buffered() <= 64 + 16, "buffer grew past the limit: {}", d.buffered());
        }
        assert_eq!(corrupt, 1, "exactly one corrupt frame for the whole flood");
    }

    #[test]
    fn stats_line_is_parseable_key_values() {
        let sizes = IndexSizes {
            index_bytes: 1024,
            sparse_bytes: 2048,
            sparse_edges: 96,
            store_bytes: 4096,
            plain_index_bytes: 1500,
            rank_lane_bytes: 192,
            dist_lane_bytes: 192,
        };
        let line = format_stats_response(
            &MetricsSnapshot::default(),
            &CacheStats::default(),
            4,
            &sizes,
            777,
            1024,
            600_000,
        );
        let body = line.strip_prefix("STATS ").unwrap();
        for kv in body.split_ascii_whitespace() {
            let (k, v) = kv.split_once('=').expect("key=value");
            assert!(!k.is_empty());
            let _: u64 = v.parse().expect("numeric value");
        }
        assert!(body.contains("epoch=4"));
        assert!(body.contains("reloads=0"));
        assert!(body.contains("updates_applied=0"));
        assert!(body.contains("update_affected_vertices=0"));
        assert!(body.contains("index_bytes=1024"));
        assert!(body.contains("sparse_bytes=2048"));
        assert!(body.contains("sparse_edges=96"));
        assert!(body.contains("sparse_relabelled=1"));
        assert!(body.contains("rank_lane_bytes=192"));
        assert!(body.contains("dist_lane_bytes=192"));
        assert!(body.contains("store_bytes=4096"));
        assert!(body.contains("plain_index_bytes=1500"));
        assert!(body.contains("load_us=777"));
        assert!(body.contains("max_connections=1024"));
        assert!(body.contains("idle_timeout_ms=600000"));
        assert!(body.contains("cache_stale=0"));
        assert!(body.contains("rejected_connections=0"));
        assert!(body.contains("timed_out_connections=0"));
        assert!(body.contains("shed_requests=0"));
        assert!(body.contains("deadline_expired=0"));
    }
}
