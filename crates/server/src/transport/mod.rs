//! Reusable event-driven transport building blocks.
//!
//! The epoll reactor pattern `hcl-server` serves with — nonblocking
//! sockets, one [`Epoll`] set, an [`EventFd`] wakeup, and a
//! per-connection state machine ([`Conn`]) that decodes the line protocol
//! incrementally and flushes responses in request order — is not specific
//! to answering queries. `hcl-router` drives its client connections with
//! the exact same machinery to proxy a sharded deployment. This module is
//! that shared layer:
//!
//! | Item | Contents |
//! |------|----------|
//! | [`sys`] | hand-rolled, std-only Linux `epoll` / `eventfd` / socket bindings ([`Epoll`], [`EventFd`], [`connect_nonblocking`](sys::connect_nonblocking)) |
//! | [`conn`] | [`Conn`]: one nonblocking connection — incremental [`Decoder`](crate::protocol::Decoder), ordered response slots, write buffer with backpressure |
//! | [`driver`] | [`ClientDriver`]: the whole client-connection loop (accept gate, read/decode, frame dispatch via [`DriverHooks`], ordered settle, idle/drain expiry) |
//!
//! The pieces compose with [`protocol`](crate::protocol) (the shared
//! codec) but carry no serving policy: what a decoded frame *means* is up
//! to the [`DriverHooks`] implementation of the event loop that owns the
//! connections (`hcl-server` submits work to its executor pool;
//! `hcl-router` forwards lines upstream).

pub mod conn;
pub mod driver;
pub mod fault;
pub mod sys;

pub use conn::{Conn, MAX_INFLIGHT, WRITE_HIGH_WATER, WRITE_LOW_WATER};
pub use driver::{ClientDriver, DriverConfig, DriverHooks};
pub use sys::{Epoll, EpollEvent, EventFd};
