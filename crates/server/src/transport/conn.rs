//! Per-connection state for an epoll event loop: a nonblocking socket,
//! the incremental [`Decoder`], an ordered queue of response slots, and a
//! write buffer with backpressure. Driven by the `hcl-server` reactor and
//! reused verbatim for `hcl-router`'s client connections.
//!
//! # Response ordering
//!
//! Requests may be answered out of submission order (a `PING` resolves
//! inline while the `QUERY` before it is still on a worker), so every
//! request claims a *slot* in FIFO order. Inline responses fill their slot
//! immediately; asynchronous ones ([`push_waiting`](Conn::push_waiting))
//! fill it when the worker's completion arrives. Only the contiguous run
//! of filled slots at the head is ever moved into the write buffer, so the
//! wire order always equals the request order no matter how completions
//! interleave.
//!
//! # Backpressure
//!
//! A client that sends requests faster than it reads responses grows the
//! write buffer; past [`WRITE_HIGH_WATER`] the connection stops *reading*
//! (its epoll interest drops `EPOLLIN`) until the buffer drains below
//! [`WRITE_LOW_WATER`]. Unresolved requests are bounded the same way:
//! past [`MAX_INFLIGHT`] queued slots reads pause until completions catch
//! up — re-establishing, in bulk, the one-request-at-a-time bound the old
//! thread-per-connection transport enforced implicitly. One fast or slow
//! client therefore bounds its own memory and never stalls the reactor.

use super::{fault, sys};
use crate::protocol::Decoder;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Stop reading once this many unsent response bytes are buffered…
pub const WRITE_HIGH_WATER: usize = 256 * 1024;
/// …and resume once the buffer drains below this.
pub const WRITE_LOW_WATER: usize = 64 * 1024;
/// Stop reading once this many response slots are queued unresolved, so a
/// pipelining client cannot grow the slot queue and the worker channel
/// without bound while its responses are still being computed.
pub const MAX_INFLIGHT: usize = 128;

/// One response slot, kept in request order.
#[derive(Debug)]
enum Slot {
    /// Response line ready to go out (no trailing newline).
    Ready(String),
    /// Waiting for the completion tagged with this sequence number.
    Waiting(u64),
}

/// State machine for one client connection; driven by the reactor.
#[derive(Debug)]
pub struct Conn {
    pub stream: TcpStream,
    pub decoder: Decoder,
    slots: VecDeque<Slot>,
    next_seq: u64,
    out: Vec<u8>,
    out_pos: usize,
    /// Reads paused by write-buffer backpressure.
    reads_paused: bool,
    /// No further requests will be read (peer EOF, corrupt framing,
    /// server drain); close once the slots resolve and the buffer flushes.
    pub draining: bool,
    /// Last read or write progress (idle-timeout bookkeeping).
    pub last_activity: Instant,
    /// When the oldest stretch of unresolved waiting slots began —
    /// `Some` while [`awaiting_completions`](Self::awaiting_completions)
    /// with no completion progress since. The driver refreshes it on
    /// every completion and uses it to bound the idle-reap exemption:
    /// a completion lost forever must not pin the connection forever.
    pub waiting_since: Option<Instant>,
    /// epoll interest bits currently registered for this socket.
    pub registered: u32,
}

impl Conn {
    pub fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            decoder: Decoder::new(),
            slots: VecDeque::new(),
            next_seq: 0,
            out: Vec::new(),
            out_pos: 0,
            reads_paused: false,
            draining: false,
            last_activity: now,
            waiting_since: None,
            registered: 0,
        }
    }

    /// Queues an already-resolved response in request order.
    pub fn push_ready(&mut self, line: String) {
        self.slots.push_back(Slot::Ready(line));
    }

    /// Claims the next slot for an asynchronous response; the returned
    /// sequence number keys the completion.
    pub fn push_waiting(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back(Slot::Waiting(seq));
        seq
    }

    /// Resolves the slot claimed under `seq`. Unknown sequence numbers are
    /// ignored (the slot was dropped by a force close).
    pub fn complete(&mut self, seq: u64, line: String) {
        if let Some(slot) =
            self.slots.iter_mut().find(|s| matches!(s, Slot::Waiting(w) if *w == seq))
        {
            *slot = Slot::Ready(line);
        }
    }

    /// Moves the contiguous ready run at the head into the write buffer.
    pub fn promote_ready(&mut self) {
        while matches!(self.slots.front(), Some(Slot::Ready(_))) {
            let Some(Slot::Ready(line)) = self.slots.pop_front() else { unreachable!() };
            self.out.extend_from_slice(line.as_bytes());
            self.out.push(b'\n');
        }
    }

    /// Unsent response bytes.
    pub fn write_pending(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Anything still owed to the client (unresolved slots or unsent
    /// bytes)?
    pub fn has_work(&self) -> bool {
        !self.slots.is_empty() || self.write_pending() > 0
    }

    /// Nonblocking flush. Returns the bytes written; `Err` means the
    /// connection is unusable and should be closed.
    pub fn try_write(&mut self) -> io::Result<usize> {
        let start = self.out_pos;
        while self.out_pos < self.out.len() {
            // The fault hook sits inside the loop so an injected EINTR or
            // short write runs the very retry arm a real one would.
            let pending = self.out.len() - self.out_pos;
            let result = match fault::check(fault::Op::Write) {
                fault::Verdict::Proceed => (&self.stream).write(&self.out[self.out_pos..]),
                fault::Verdict::Short(n) => {
                    let n = n.clamp(1, pending);
                    (&self.stream).write(&self.out[self.out_pos..self.out_pos + n])
                }
                fault::Verdict::Fail(e) => Err(e),
                fault::Verdict::Eof => Ok(0),
            };
            match result {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let written = self.out_pos - start;
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > WRITE_HIGH_WATER {
            // Reclaim the sent prefix so a long-lived slow reader doesn't
            // pin peak-sized buffers.
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(written)
    }

    /// One nonblocking read into `scratch`. `Ok(None)` = would block.
    pub fn try_read(&mut self, scratch: &mut [u8]) -> io::Result<Option<usize>> {
        loop {
            let result = match fault::check(fault::Op::Read) {
                fault::Verdict::Proceed => (&self.stream).read(scratch),
                fault::Verdict::Short(n) => {
                    let n = n.clamp(1, scratch.len());
                    (&self.stream).read(&mut scratch[..n])
                }
                fault::Verdict::Fail(e) => Err(e),
                fault::Verdict::Eof => Ok(0),
            };
            match result {
                Ok(n) => return Ok(Some(n)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether any response is still being computed (a waiting slot) —
    /// the server itself is the reason this connection shows no socket
    /// progress, so e.g. the idle reaper must not count it as idle.
    pub fn awaiting_completions(&self) -> bool {
        self.slots.iter().any(|s| matches!(s, Slot::Waiting(_)))
    }

    /// Applies the write-buffer and in-flight-slot hysteresis to the
    /// read-pause flag.
    pub fn update_backpressure(&mut self) {
        let overloaded =
            self.write_pending() >= WRITE_HIGH_WATER || self.slots.len() >= MAX_INFLIGHT;
        let relaxed =
            self.write_pending() <= WRITE_LOW_WATER && self.slots.len() < MAX_INFLIGHT / 2;
        if !self.reads_paused && overloaded {
            self.reads_paused = true;
        } else if self.reads_paused && relaxed {
            self.reads_paused = false;
        }
    }

    /// Whether the reactor should read from this socket right now.
    pub fn wants_read(&self) -> bool {
        !self.draining && !self.reads_paused
    }

    /// The epoll interest set matching the current state.
    pub fn desired_interest(&self) -> u32 {
        let mut events = 0;
        if self.wants_read() {
            events |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.write_pending() > 0 {
            events |= sys::EPOLLOUT;
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// A connected loopback pair (server side first).
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (server, client)
    }

    #[test]
    fn out_of_order_completions_flush_in_request_order() {
        let (server, client) = pair();
        let mut conn = Conn::new(server, Instant::now());

        let first = conn.push_waiting();
        conn.push_ready("MIDDLE".to_string());
        let last = conn.push_waiting();

        // Nothing can go out while the head slot is unresolved.
        conn.promote_ready();
        assert_eq!(conn.write_pending(), 0);
        conn.complete(last, "LAST".to_string());
        conn.promote_ready();
        assert_eq!(conn.write_pending(), 0, "head still waiting");

        conn.complete(first, "FIRST".to_string());
        conn.promote_ready();
        conn.try_write().unwrap();
        assert!(!conn.has_work());

        let mut got = String::new();
        use std::io::Read;
        client.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
        let mut reader = std::io::BufReader::new(client);
        for expect in ["FIRST", "MIDDLE", "LAST"] {
            got.clear();
            std::io::BufRead::read_line(&mut reader, &mut got).unwrap();
            assert_eq!(got.trim_end(), expect);
        }
        let _ = reader.get_mut().read(&mut [0u8; 1]); // nothing else buffered
    }

    #[test]
    fn completions_for_dropped_slots_are_ignored() {
        let (server, _client) = pair();
        let mut conn = Conn::new(server, Instant::now());
        conn.complete(99, "STALE".to_string());
        assert!(!conn.has_work());
    }

    #[test]
    fn inflight_slot_cap_pauses_reads_until_completions_catch_up() {
        let (server, _client) = pair();
        let mut conn = Conn::new(server, Instant::now());
        let seqs: Vec<u64> = (0..MAX_INFLIGHT).map(|_| conn.push_waiting()).collect();
        conn.update_backpressure();
        assert!(!conn.wants_read(), "at the in-flight cap: reads pause");
        assert!(conn.awaiting_completions());

        for seq in seqs {
            conn.complete(seq, "DIST 1".to_string());
        }
        conn.promote_ready();
        conn.try_write().unwrap();
        conn.update_backpressure();
        assert!(conn.wants_read(), "resolved and flushed: reads resume");
        assert!(!conn.awaiting_completions());
    }

    #[test]
    fn backpressure_pauses_reads_until_the_buffer_drains() {
        let (server, _client) = pair();
        let mut conn = Conn::new(server, Instant::now());
        assert!(conn.wants_read());

        conn.push_ready("x".repeat(WRITE_HIGH_WATER + 1024));
        conn.promote_ready();
        conn.update_backpressure();
        assert!(!conn.wants_read(), "past high water: reads pause");
        assert_ne!(conn.desired_interest() & sys::EPOLLOUT, 0);
        assert_eq!(conn.desired_interest() & sys::EPOLLIN, 0);

        // The peer never reads, so the kernel buffer fills; whatever was
        // written, pending stays above the low-water mark here.
        conn.try_write().unwrap();
        conn.update_backpressure();
        let _ = conn.wants_read(); // state is consistent either way

        // Simulate a full drain.
        conn.out.clear();
        conn.out_pos = 0;
        conn.update_backpressure();
        assert!(conn.wants_read(), "below low water: reads resume");
    }
}
