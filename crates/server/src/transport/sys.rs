//! Minimal Linux `epoll` / `eventfd` / socket bindings, declared by hand
//! so the workspace stays std-only (std already links libc; these few
//! syscalls are the only thing the reactors need beyond what std
//! exposes).
//!
//! Everything is wrapped in two tiny RAII types — [`Epoll`] and
//! [`EventFd`] — plus two free functions for the one socket operation std
//! hides: starting a TCP connect *without blocking*
//! ([`connect_nonblocking`]) and collecting its verdict once epoll
//! reports the socket writable ([`socket_error`]). The rest of the crate
//! never touches a raw fd except to register sockets it already owns.

use hcl_core::fault;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};

/// Readable (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`; always reported, never registered).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`; always reported, never registered).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0o4000;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_ERROR: c_int = 4;
const EINPROGRESS: i32 = 115;

/// `struct sockaddr_in` (Linux layout; port and address in network byte
/// order).
#[repr(C)]
struct SockAddrIn {
    family: u16,
    port_be: u16,
    addr: [u8; 4],
    zero: [u8; 8],
}

/// `struct sockaddr_in6` (Linux layout).
#[repr(C)]
struct SockAddrIn6 {
    family: u16,
    port_be: u16,
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

/// One readiness event. The kernel ABI packs this struct on x86_64 and
/// uses natural alignment everywhere else — mirror that exactly.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Debug, Default)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The token registered with the fd (connection id, listener, wake).
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const c_void, len: c_uint) -> c_int;
    fn getsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut c_void,
        optlen: *mut c_uint,
    ) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Starts a TCP connect to `addr` without blocking.
///
/// Returns the (nonblocking, close-on-exec) socket plus `true` when the
/// handshake is still in flight (`EINPROGRESS`): register the fd for
/// `EPOLLOUT`, and when it fires call [`socket_error`] for the verdict.
/// `false` means the connect completed synchronously (common on
/// loopback). Address-family mismatches and synchronous refusals report
/// as `Err`.
///
/// std has no equivalent — `TcpStream::connect_timeout` parks the calling
/// thread in `poll(2)`, which is exactly the reactor stall this function
/// exists to avoid.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<(TcpStream, bool)> {
    use std::os::fd::{AsRawFd, FromRawFd};

    match fault::check(fault::Op::Connect) {
        fault::Verdict::Proceed => {}
        // An injected failure behaves like a synchronous refusal: no
        // socket is created and the caller's error path runs unchanged.
        fault::Verdict::Fail(e) => return Err(e),
        fault::Verdict::Short(_) | fault::Verdict::Eof => {
            return Err(io::Error::from(io::ErrorKind::ConnectionRefused));
        }
    }
    let family = match addr {
        SocketAddr::V4(_) => AF_INET,
        SocketAddr::V6(_) => AF_INET6,
    };
    let fd = cvt(unsafe { socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    // Owned from here on: any error path below closes the fd on drop.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    let rc = match addr {
        SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                family: AF_INET as u16,
                port_be: v4.port().to_be(),
                addr: v4.ip().octets(),
                zero: [0; 8],
            };
            unsafe {
                connect(
                    stream.as_raw_fd(),
                    (&sa as *const SockAddrIn).cast(),
                    std::mem::size_of::<SockAddrIn>() as c_uint,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                family: AF_INET6 as u16,
                port_be: v6.port().to_be(),
                flowinfo: v6.flowinfo(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            unsafe {
                connect(
                    stream.as_raw_fd(),
                    (&sa as *const SockAddrIn6).cast(),
                    std::mem::size_of::<SockAddrIn6>() as c_uint,
                )
            }
        }
    };
    if rc == 0 {
        return Ok((stream, false));
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINPROGRESS) {
        Ok((stream, true))
    } else {
        Err(err)
    }
}

/// Collects and clears the pending error on a socket (`SO_ERROR`) — the
/// verdict of an in-progress [`connect_nonblocking`] once epoll reports
/// the fd writable. `Ok(())` means the connection is established.
pub fn socket_error(fd: RawFd) -> io::Result<()> {
    let mut err: c_int = 0;
    let mut len = std::mem::size_of::<c_int>() as c_uint;
    cvt(unsafe {
        getsockopt(fd, SOL_SOCKET, SO_ERROR, (&mut err as *mut c_int).cast(), &mut len)
    })?;
    if err == 0 {
        Ok(())
    } else {
        Err(io::Error::from_raw_os_error(err))
    }
}

/// An owned epoll instance (level-triggered use only in this crate).
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` for `events`, tagging readiness with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest set for `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks for readiness, at most `timeout_ms` milliseconds (−1 =
    /// forever), filling `events` from the front. Returns how many fired;
    /// a signal interruption simply reports zero so the caller's loop
    /// re-evaluates its deadlines.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // Injection happens at the syscall-result level so a scripted
        // `EINTR` exercises the same interrupted-wait mapping below.
        let raw = match fault::check(fault::Op::EpollWait) {
            fault::Verdict::Proceed => {
                let n = unsafe {
                    epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
                };
                if n < 0 {
                    Err(io::Error::last_os_error())
                } else {
                    Ok(n as usize)
                }
            }
            fault::Verdict::Fail(e) => Err(e),
            fault::Verdict::Short(_) | fault::Verdict::Eof => Ok(0),
        };
        match raw {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            other => other,
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd used as the reactor's wakeup: worker threads
/// [`signal`](Self::signal) it after pushing a completion (and shutdown
/// signals it after flipping the flag); the reactor holds it in its epoll
/// set and [`drain`](Self::drain)s it when it fires. This replaces the old
/// connect-to-self "poke" — waking the event loop is one 8-byte write on an
/// fd the process already owns.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter zero.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The fd to register with an [`Epoll`].
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Adds one to the counter, waking any epoll waiting on it, retrying
    /// an interrupted write — an `EINTR` swallowed here would be a lost
    /// wakeup and a reactor that sleeps on queued completions. A full
    /// counter (`EAGAIN`) already guarantees a pending wakeup, so every
    /// non-interrupted outcome is a successful wake.
    pub fn signal(&self) {
        let one: u64 = 1;
        loop {
            match fault::check(fault::Op::EventFdWrite) {
                fault::Verdict::Proceed => {}
                fault::Verdict::Fail(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                fault::Verdict::Fail(_) | fault::Verdict::Short(_) | fault::Verdict::Eof => return,
            }
            let rc = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
            if rc < 0 && io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return;
        }
    }

    /// Zeroes the counter so the (level-triggered) fd stops reporting
    /// readable, retrying an interrupted read — leaving the counter
    /// nonzero would spin the level-triggered reactor until a later drain
    /// succeeds.
    pub fn drain(&self) {
        let mut value: u64 = 0;
        loop {
            match fault::check(fault::Op::EventFdRead) {
                fault::Verdict::Proceed => {}
                fault::Verdict::Fail(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                fault::Verdict::Fail(_) | fault::Verdict::Short(_) | fault::Verdict::Eof => return,
            }
            let rc = unsafe { read(self.fd, (&mut value as *mut u64).cast(), 8) };
            if rc < 0 && io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return;
        }
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_signals_and_drains() {
        let efd = EventFd::new().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(efd.raw(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::default(); 4];
        // Nothing signalled: a zero-timeout wait reports nothing.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        efd.signal();
        efd.signal();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        let (fired, token) = (events[0].events, events[0].data);
        assert_ne!(fired & EPOLLIN, 0);
        assert_eq!(token, 7);

        // Level-triggered: still readable until drained, then quiet.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 1);
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn signal_from_another_thread_wakes_a_blocking_wait() {
        let efd = std::sync::Arc::new(EventFd::new().unwrap());
        let epoll = Epoll::new().unwrap();
        epoll.add(efd.raw(), EPOLLIN, 1).unwrap();

        let signaller = std::sync::Arc::clone(&efd);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            signaller.signal();
        });
        let mut events = [EpollEvent::default(); 1];
        // Blocks until the other thread signals (bounded for test safety).
        assert_eq!(epoll.wait(&mut events, 10_000).unwrap(), 1);
        t.join().unwrap();
    }

    #[test]
    fn nonblocking_connect_completes_via_epollout() {
        use std::os::fd::AsRawFd;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let (stream, in_progress) = connect_nonblocking(&addr).unwrap();
        if in_progress {
            let epoll = Epoll::new().unwrap();
            epoll.add(stream.as_raw_fd(), EPOLLOUT, 9).unwrap();
            let mut events = [EpollEvent::default(); 1];
            assert_eq!(epoll.wait(&mut events, 5_000).unwrap(), 1);
        }
        socket_error(stream.as_raw_fd()).unwrap();
        // The handshake really happened: the listener sees the peer.
        let (_peer, peer_addr) = listener.accept().unwrap();
        assert_eq!(peer_addr, stream.local_addr().unwrap());
    }

    #[test]
    fn nonblocking_connect_to_closed_port_reports_the_refusal() {
        use std::os::fd::AsRawFd;
        // Bind-then-drop: the port is free, so nothing is listening.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        match connect_nonblocking(&addr) {
            // Loopback refusals usually surface synchronously.
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::ConnectionRefused),
            Ok((stream, true)) => {
                let epoll = Epoll::new().unwrap();
                epoll.add(stream.as_raw_fd(), EPOLLOUT, 0).unwrap();
                let mut events = [EpollEvent::default(); 1];
                assert_eq!(epoll.wait(&mut events, 5_000).unwrap(), 1);
                socket_error(stream.as_raw_fd()).unwrap_err();
            }
            Ok((_, false)) => panic!("connect to a closed port cannot succeed"),
        }
    }

    #[test]
    fn modify_and_delete_change_the_interest_set() {
        let efd = EventFd::new().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(efd.raw(), 0, 3).unwrap();
        efd.signal();
        // Registered with an empty interest set: no events.
        let mut events = [EpollEvent::default(); 1];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        epoll.modify(efd.raw(), EPOLLIN, 3).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 1);
        epoll.delete(efd.raw()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }
}
