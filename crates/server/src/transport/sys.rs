//! Minimal Linux `epoll` / `eventfd` bindings, declared by hand so the
//! workspace stays std-only (std already links libc; these four syscalls
//! are the only thing the reactor needs beyond what std exposes).
//!
//! Everything is wrapped in two tiny RAII types — [`Epoll`] and
//! [`EventFd`] — so the rest of the crate never touches a raw fd except to
//! register sockets it already owns.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};

/// Readable (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`; always reported, never registered).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`; always reported, never registered).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One readiness event. The kernel ABI packs this struct on x86_64 and
/// uses natural alignment everywhere else — mirror that exactly.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy, Debug, Default)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The token registered with the fd (connection id, listener, wake).
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance (level-triggered use only in this crate).
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` for `events`, tagging readiness with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest set for `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks for readiness, at most `timeout_ms` milliseconds (−1 =
    /// forever), filling `events` from the front. Returns how many fired;
    /// a signal interruption simply reports zero so the caller's loop
    /// re-evaluates its deadlines.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n =
            unsafe { epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd used as the reactor's wakeup: worker threads
/// [`signal`](Self::signal) it after pushing a completion (and shutdown
/// signals it after flipping the flag); the reactor holds it in its epoll
/// set and [`drain`](Self::drain)s it when it fires. This replaces the old
/// connect-to-self "poke" — waking the event loop is one 8-byte write on an
/// fd the process already owns.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter zero.
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    /// The fd to register with an [`Epoll`].
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Adds one to the counter, waking any epoll waiting on it. A full
    /// counter (`EAGAIN`) already guarantees a pending wakeup, so every
    /// outcome is a successful wake.
    pub fn signal(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Zeroes the counter so the (level-triggered) fd stops reporting
    /// readable.
    pub fn drain(&self) {
        let mut value: u64 = 0;
        unsafe { read(self.fd, (&mut value as *mut u64).cast(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_signals_and_drains() {
        let efd = EventFd::new().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(efd.raw(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::default(); 4];
        // Nothing signalled: a zero-timeout wait reports nothing.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        efd.signal();
        efd.signal();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        let (fired, token) = (events[0].events, events[0].data);
        assert_ne!(fired & EPOLLIN, 0);
        assert_eq!(token, 7);

        // Level-triggered: still readable until drained, then quiet.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 1);
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn signal_from_another_thread_wakes_a_blocking_wait() {
        let efd = std::sync::Arc::new(EventFd::new().unwrap());
        let epoll = Epoll::new().unwrap();
        epoll.add(efd.raw(), EPOLLIN, 1).unwrap();

        let signaller = std::sync::Arc::clone(&efd);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            signaller.signal();
        });
        let mut events = [EpollEvent::default(); 1];
        // Blocks until the other thread signals (bounded for test safety).
        assert_eq!(epoll.wait(&mut events, 10_000).unwrap(), 1);
        t.join().unwrap();
    }

    #[test]
    fn modify_and_delete_change_the_interest_set() {
        let efd = EventFd::new().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(efd.raw(), 0, 3).unwrap();
        efd.signal();
        // Registered with an empty interest set: no events.
        let mut events = [EpollEvent::default(); 1];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        epoll.modify(efd.raw(), EPOLLIN, 3).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 1);
        epoll.delete(efd.raw()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }
}
