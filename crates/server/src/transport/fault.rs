//! Fault-injection surface for the transport layer.
//!
//! This is a re-export of [`hcl_core::fault`] — the script table lives in
//! `hcl-core` so `hcl-store` (which cannot depend on this crate) can
//! route `mmap` through the same [`check`] hook the transport uses for
//! `read`/`write`/`accept`/`epoll_wait`/`connect`/eventfd operations.
//!
//! # Where the hooks sit
//!
//! | [`Op`] lane | call site |
//! |-------------|-----------|
//! | `Read` / `Write` | [`Conn`](super::Conn) stream I/O, inside the retry loop so injected `EINTR` exercises the retry arm |
//! | `Accept` | [`ClientDriver::accept_ready`](super::ClientDriver), before `listener.accept()` |
//! | `EpollWait` | [`Epoll::wait`](super::Epoll), at the syscall-result level |
//! | `Connect` | [`connect_nonblocking`](super::sys::connect_nonblocking) |
//! | `EventFdRead` / `EventFdWrite` | [`EventFd::drain`/`signal`](super::EventFd) retry loops |
//! | `UpstreamRead` / `UpstreamWrite` | `hcl-router`'s upstream wires |
//! | `Mmap` | `hcl-store`'s `Mmap::map_file` |
//!
//! Enable with the `fault-injection` cargo feature (`hcl-server`'s
//! feature forwards to `hcl-core`'s and `hcl-store`'s); without it every
//! hook is an inlined no-op. See the module docs of [`hcl_core::fault`]
//! for the scripting API and docs/ARCHITECTURE.md for how to write a
//! chaos test.

pub use hcl_core::fault::*;
