//! The shared client-connection driving loop: accept gate, read/decode,
//! frame dispatch, ordered settle, and timer-driven expiry.
//!
//! Both the `hcl-server` and `hcl-router` reactors drive client sockets
//! identically — accept up to a cap, feed bytes to the incremental
//! [`Decoder`](crate::protocol::Decoder), dispatch frames, flush ready
//! responses in request order, reap idle connections, and drain on
//! shutdown. [`ClientDriver`] owns that loop once; what *differs* (how a
//! frame becomes a response) is injected through [`DriverHooks`], so
//! resilience changes to the shared path land in one place.
//!
//! The driver deliberately does not own the epoll instance or the event
//! loop itself: the embedding reactor also waits on upstream sockets,
//! wakeups, and its own timers. It routes readiness events here by token
//! ([`TOKEN_LISTENER`] and ids at or above the `first_id` it chose) and
//! folds [`next_deadline`](ClientDriver::next_deadline) into its poll
//! timeout.
//!
//! # Bounding the idle-reap exemption
//!
//! A connection awaiting an in-flight completion shows no socket progress
//! through no fault of the client, so it is exempt from the idle timeout.
//! Unbounded, that exemption is a leak: a completion lost to a failed
//! upstream would pin the connection (and its slot queue) forever. When
//! [`DriverConfig::completion_deadline`] is set, a connection that has
//! seen *no completion progress* for that long is reaped anyway — the
//! deadline should cover the full retry/backoff budget of whatever
//! produces the completions, so it only fires when a response can no
//! longer arrive.

use super::conn::Conn;
use super::fault;
use super::sys::{self, Epoll};
use crate::protocol::Frame;
use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// epoll token for the listener.
pub const TOKEN_LISTENER: u64 = 0;
/// epoll token conventionally reserved for the embedder's wakeup fd.
pub const TOKEN_WAKE: u64 = 1;

/// Reads performed per readiness event before letting other connections
/// run (level-triggered epoll re-reports leftover data).
const MAX_READS_PER_EVENT: usize = 16;
/// Scratch read-buffer size.
const READ_CHUNK: usize = 16 * 1024;
/// How long the listener stays deregistered after a persistent accept
/// failure (e.g. fd exhaustion under a connection flood) so the reactor
/// doesn't busy-spin on a level-triggered error.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// Limits and timeouts for the shared connection loop.
pub struct DriverConfig {
    /// Accept cap; connections past it get `capacity_line` and a close.
    pub max_connections: usize,
    /// Reap connections with no socket activity for this long (zero
    /// disables; awaiting connections are exempt, see module docs).
    pub idle_timeout: Duration,
    /// How long a drain waits for connections to finish before
    /// force-closing them.
    pub drain_grace: Duration,
    /// Bound on the idle-reap exemption for connections awaiting
    /// completions; `None` leaves the exemption unbounded.
    pub completion_deadline: Option<Duration>,
    /// Courtesy line written to connections rejected at the accept cap
    /// (must include the trailing newline).
    pub capacity_line: &'static str,
}

/// What the embedding reactor plugs into the shared loop.
pub trait DriverHooks {
    /// Dispatches one decoded frame: fill a slot inline, or claim a
    /// waiting slot and arrange for a later
    /// [`complete`](ClientDriver::complete). The epoll is passed through
    /// for hooks that must register new fds (e.g. upstream connects).
    fn on_frame(&mut self, epoll: &Epoll, conn: &mut Conn, id: u64, frame: Frame);
    /// A connection was accepted and registered.
    fn on_accepted(&mut self) {}
    /// A connection was turned away at the accept cap.
    fn on_rejected(&mut self) {}
    /// A connection was reaped by the idle timer or completion deadline.
    fn on_reaped(&mut self) {}
    /// A connection was closed (every path, including reaps).
    fn on_closed(&mut self) {}
}

/// Owns every client connection of one reactor; see module docs.
pub struct ClientDriver {
    config: DriverConfig,
    /// `None` once a drain has begun (the port closes immediately) or
    /// while accept errors are backing off.
    listener: Option<TcpListener>,
    /// Set while the listener is parked after a persistent accept error.
    relisten_at: Option<Instant>,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
    scratch: Vec<u8>,
}

impl ClientDriver {
    /// Registers the (already nonblocking) listener under
    /// [`TOKEN_LISTENER`]. Connection ids start at `first_id` and are
    /// never reused, so a completion for a closed connection just misses
    /// the map; the embedder picks `first_id` above its own tokens.
    pub fn new(
        epoll: &Epoll,
        listener: TcpListener,
        first_id: u64,
        config: DriverConfig,
    ) -> io::Result<ClientDriver> {
        epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
        Ok(ClientDriver {
            config,
            listener: Some(listener),
            relisten_at: None,
            conns: HashMap::new(),
            next_id: first_id,
            draining: false,
            drain_deadline: None,
            scratch: vec![0u8; READ_CHUNK],
        })
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Whether the drain has finished (no connections left).
    pub fn is_drained(&self) -> bool {
        self.draining && self.conns.is_empty()
    }

    /// Open client connections.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Accepts as many pending connections as the cap allows.
    pub fn accept_ready<H: DriverHooks>(&mut self, epoll: &Epoll, now: Instant, hooks: &mut H) {
        loop {
            let Some(listener) = &self.listener else { return };
            // Injected accept failures (EMFILE floods, EINTR) take the
            // same arms a real kernel verdict would.
            let accepted = match fault::check(fault::Op::Accept) {
                fault::Verdict::Proceed => listener.accept(),
                fault::Verdict::Fail(e) => Err(e),
                fault::Verdict::Short(_) | fault::Verdict::Eof => {
                    Err(io::ErrorKind::WouldBlock.into())
                }
            };
            match accepted {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= self.config.max_connections {
                        hooks.on_rejected();
                        // Best-effort courtesy line; the close is the
                        // real signal.
                        let _ = stream.set_nonblocking(true);
                        use std::io::Write;
                        let _ = (&stream).write(self.config.capacity_line.as_bytes());
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let id = self.next_id;
                    self.next_id += 1;
                    let mut conn = Conn::new(stream, now);
                    let interest = conn.desired_interest();
                    if epoll.add(conn.stream.as_raw_fd(), interest, id).is_err() {
                        continue;
                    }
                    conn.registered = interest;
                    hooks.on_accepted();
                    self.conns.insert(id, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Persistent accept failure: park the listener briefly
                    // instead of spinning on a level-triggered error.
                    let listener = self.listener.take().expect("listener present");
                    let _ = epoll.delete(listener.as_raw_fd());
                    self.listener = Some(listener);
                    self.relisten_at = Some(now + ACCEPT_BACKOFF);
                    return;
                }
            }
        }
    }

    /// Handles readiness on connection `id`: read, decode, dispatch
    /// frames through `hooks`, then settle.
    pub fn conn_event<H: DriverHooks>(
        &mut self,
        epoll: &Epoll,
        id: u64,
        bits: u32,
        now: Instant,
        hooks: &mut H,
    ) {
        let Some(mut conn) = self.conns.remove(&id) else { return };
        let mut alive = true;
        if bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
            alive = self.read_and_decode(epoll, &mut conn, id, now, hooks);
        }
        if alive {
            alive = self.settle(epoll, &mut conn, id, now);
        }
        if alive {
            self.conns.insert(id, conn);
        } else {
            self.destroy(epoll, conn, hooks);
        }
    }

    /// Reads available bytes, decodes frames, dispatches them. Returns
    /// `false` when the connection is already unusable (read error).
    fn read_and_decode<H: DriverHooks>(
        &mut self,
        epoll: &Epoll,
        conn: &mut Conn,
        id: u64,
        now: Instant,
        hooks: &mut H,
    ) -> bool {
        for _ in 0..MAX_READS_PER_EVENT {
            if !conn.wants_read() {
                break;
            }
            match conn.try_read(&mut self.scratch) {
                Ok(Some(0)) => {
                    // Peer EOF: what was received still gets answered
                    // (including a trailing unterminated line), then the
                    // connection drains and closes.
                    conn.decoder.finish();
                    conn.draining = true;
                }
                Ok(Some(n)) => {
                    conn.last_activity = now;
                    conn.decoder.feed(&self.scratch[..n]);
                }
                Ok(None) => break,
                Err(_) => return false,
            }
            while let Some(frame) = conn.decoder.next_frame() {
                hooks.on_frame(epoll, conn, id, frame);
                if conn.draining {
                    break;
                }
            }
            if conn.draining {
                break;
            }
            conn.promote_ready();
            conn.update_backpressure();
        }
        // A drain (EOF / SHUTDOWN / corrupt framing) may leave final
        // frames decoded but unprocessed only when `draining` stopped the
        // loop — the decoder is either dead or empty then, nothing is
        // lost.
        true
    }

    /// Resolves the slot claimed under (`id`, `seq`) and settles the
    /// connection. Completions for closed connections are dropped.
    pub fn complete<H: DriverHooks>(
        &mut self,
        epoll: &Epoll,
        id: u64,
        seq: u64,
        line: String,
        now: Instant,
        hooks: &mut H,
    ) {
        let Some(mut conn) = self.conns.remove(&id) else {
            return; // connection closed while the work was in flight
        };
        conn.complete(seq, line);
        // Completion progress restarts the no-progress clock (settle
        // below re-derives `None` if nothing is waiting anymore).
        conn.waiting_since = Some(now);
        if self.settle(epoll, &mut conn, id, now) {
            self.conns.insert(id, conn);
        } else {
            self.destroy(epoll, conn, hooks);
        }
    }

    /// Promotes/flushes responses and re-syncs epoll interest. Returns
    /// `false` when the connection should be closed.
    fn settle(&mut self, epoll: &Epoll, conn: &mut Conn, id: u64, now: Instant) -> bool {
        conn.promote_ready();
        if conn.write_pending() > 0 {
            match conn.try_write() {
                Ok(written) => {
                    if written > 0 {
                        conn.last_activity = now;
                    }
                }
                Err(_) => return false,
            }
        }
        conn.update_backpressure();
        if conn.awaiting_completions() {
            if conn.waiting_since.is_none() {
                conn.waiting_since = Some(now);
            }
        } else {
            conn.waiting_since = None;
        }
        if conn.draining && !conn.has_work() {
            return false;
        }
        let want = conn.desired_interest();
        if want != conn.registered && epoll.modify(conn.stream.as_raw_fd(), want, id).is_err() {
            return false;
        }
        conn.registered = want;
        true
    }

    /// Stops accepting, closes the port, and puts every connection into
    /// draining: outstanding requests finish, buffers flush, then each
    /// socket closes. `drain_grace` bounds how long a stuck client can
    /// hold this up.
    pub fn begin_drain<H: DriverHooks>(&mut self, epoll: &Epoll, now: Instant, hooks: &mut H) {
        self.draining = true;
        self.drain_deadline = Some(now + self.config.drain_grace);
        self.relisten_at = None;
        if let Some(listener) = self.listener.take() {
            let _ = epoll.delete(listener.as_raw_fd());
        }
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(mut conn) = self.conns.remove(&id) else { continue };
            conn.draining = true;
            if self.settle(epoll, &mut conn, id, now) {
                self.conns.insert(id, conn);
            } else {
                self.destroy(epoll, conn, hooks);
            }
        }
    }

    /// Fires timer-driven transitions: accept-backoff expiry, idle
    /// timeouts, completion deadlines, and the drain deadline.
    pub fn expire<H: DriverHooks>(&mut self, epoll: &Epoll, now: Instant, hooks: &mut H) {
        if let Some(at) = self.relisten_at {
            if now >= at && !self.draining {
                self.relisten_at = None;
                if let Some(listener) = &self.listener {
                    let _ = epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER);
                }
            }
        }
        if self.draining {
            if self.drain_deadline.is_some_and(|at| now >= at) {
                // Grace expired: force-close whatever is left.
                for (_, conn) in std::mem::take(&mut self.conns) {
                    self.destroy(epoll, conn, hooks);
                }
            }
            return;
        }
        let idle = self.config.idle_timeout;
        let completion = self.config.completion_deadline;
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                if c.awaiting_completions() {
                    // Exempt from the idle timer, but the exemption is
                    // bounded: no completion progress for the whole
                    // deadline means the response is never coming.
                    match (completion, c.waiting_since) {
                        (Some(d), Some(since)) => now.saturating_duration_since(since) >= d,
                        _ => false,
                    }
                } else {
                    !idle.is_zero() && now.saturating_duration_since(c.last_activity) >= idle
                }
            })
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            if let Some(conn) = self.conns.remove(&id) {
                hooks.on_reaped();
                self.destroy(epoll, conn, hooks);
            }
        }
    }

    /// The nearest timer deadline the embedder must wake for, or `None`
    /// to block indefinitely.
    pub fn next_deadline(&self) -> Option<Instant> {
        let mut deadline = self.drain_deadline;
        let mut fold = |at: Option<Instant>| {
            if let Some(at) = at {
                deadline = Some(deadline.map_or(at, |d| d.min(at)));
            }
        };
        fold(self.relisten_at);
        if !self.draining {
            // Mirror the expire() filter exactly: an awaiting connection
            // is driven by the completion deadline (if any), everything
            // else by the idle timer.
            let idle = self.config.idle_timeout;
            let completion = self.config.completion_deadline;
            for c in self.conns.values() {
                if c.awaiting_completions() {
                    if let (Some(d), Some(since)) = (completion, c.waiting_since) {
                        fold(Some(since + d));
                    }
                } else if !idle.is_zero() {
                    fold(Some(c.last_activity + idle));
                }
            }
        }
        deadline
    }

    /// Deregisters and drops a connection (the close happens on drop).
    fn destroy<H: DriverHooks>(&mut self, epoll: &Epoll, conn: Conn, hooks: &mut H) {
        let _ = epoll.delete(conn.stream.as_raw_fd());
        hooks.on_closed();
        drop(conn);
    }
}

/// Milliseconds until `deadline` for an epoll wait, or −1 to block
/// forever. Adds 1 ms so the wakeup lands at-or-after the deadline, not a
/// hair before it (which would spin once).
pub fn deadline_to_timeout_ms(deadline: Option<Instant>) -> i32 {
    match deadline {
        Some(at) => {
            let ms = at.saturating_duration_since(Instant::now()).as_millis() as i64 + 1;
            ms.min(i32::MAX as i64) as i32
        }
        None => -1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::sys::EpollEvent;
    use std::io::Write;
    use std::net::TcpStream;

    /// Answers PING inline and parks every QUERY in a slot that is never
    /// completed — the "completion lost to a failed upstream" scenario.
    #[derive(Default)]
    struct LossyHooks {
        reaped: usize,
        closed: usize,
    }

    impl DriverHooks for LossyHooks {
        fn on_frame(&mut self, _epoll: &Epoll, conn: &mut Conn, _id: u64, frame: Frame) {
            match frame {
                Frame::Ping => conn.push_ready("PONG".to_string()),
                Frame::Query(..) => {
                    conn.push_waiting();
                }
                _ => conn.push_ready("ERR unsupported".to_string()),
            }
        }
        fn on_reaped(&mut self) {
            self.reaped += 1;
        }
        fn on_closed(&mut self) {
            self.closed += 1;
        }
    }

    fn harness(config: DriverConfig) -> (Epoll, ClientDriver, std::net::SocketAddr) {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let driver = ClientDriver::new(&epoll, listener, 2, config).unwrap();
        (epoll, driver, addr)
    }

    /// Pumps the event loop for `dur`, mimicking an embedding reactor.
    fn spin(epoll: &Epoll, driver: &mut ClientDriver, hooks: &mut LossyHooks, dur: Duration) {
        let start = Instant::now();
        let mut events = [EpollEvent::default(); 16];
        while start.elapsed() < dur {
            let timeout = deadline_to_timeout_ms(driver.next_deadline()).clamp(-1, 20);
            let timeout = if timeout < 0 { 20 } else { timeout };
            let fired = epoll.wait(&mut events, timeout).unwrap_or_default();
            let now = Instant::now();
            for event in &events[..fired] {
                let (token, bits) = (event.data, event.events);
                match token {
                    TOKEN_LISTENER => driver.accept_ready(epoll, now, hooks),
                    TOKEN_WAKE => {}
                    id => driver.conn_event(epoll, id, bits, now, hooks),
                }
            }
            driver.expire(epoll, now, hooks);
        }
    }

    #[test]
    fn completion_deadline_reaps_a_pinned_connection() {
        let (epoll, mut driver, addr) = harness(DriverConfig {
            max_connections: 4,
            idle_timeout: Duration::from_secs(600),
            drain_grace: Duration::from_secs(1),
            completion_deadline: Some(Duration::from_millis(80)),
            capacity_line: "ERR at capacity\n",
        });
        let mut hooks = LossyHooks::default();
        let mut client = TcpStream::connect(addr).unwrap();
        // The QUERY's completion never arrives; the PING behind it can
        // never flush, so without the deadline this pins forever.
        client.write_all(b"QUERY 1 2\nPING\n").unwrap();
        spin(&epoll, &mut driver, &mut hooks, Duration::from_millis(300));
        assert_eq!(hooks.reaped, 1, "no-progress connection reaped at the deadline");
        assert_eq!(driver.conn_count(), 0);
    }

    #[test]
    fn without_a_deadline_awaiting_connections_stay_exempt() {
        let (epoll, mut driver, addr) = harness(DriverConfig {
            max_connections: 4,
            // Aggressive idle timer to prove the exemption holds.
            idle_timeout: Duration::from_millis(40),
            drain_grace: Duration::from_secs(1),
            completion_deadline: None,
            capacity_line: "ERR at capacity\n",
        });
        let mut hooks = LossyHooks::default();
        let mut awaiting = TcpStream::connect(addr).unwrap();
        awaiting.write_all(b"QUERY 1 2\n").unwrap();
        let _idle = TcpStream::connect(addr).unwrap();
        spin(&epoll, &mut driver, &mut hooks, Duration::from_millis(250));
        assert_eq!(hooks.reaped, 1, "only the idle connection is reaped");
        assert_eq!(driver.conn_count(), 1, "the awaiting connection survives");
    }

    #[test]
    fn completion_progress_resets_the_deadline_clock() {
        let (epoll, mut driver, addr) = harness(DriverConfig {
            max_connections: 4,
            idle_timeout: Duration::from_secs(600),
            drain_grace: Duration::from_secs(1),
            completion_deadline: Some(Duration::from_millis(120)),
            capacity_line: "ERR at capacity\n",
        });
        let mut hooks = LossyHooks::default();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"QUERY 1 2\nQUERY 3 4\n").unwrap();
        // Let both slots park, then resolve them one at a time, each
        // within the deadline but with the total well past it: steady
        // progress must keep the connection alive.
        spin(&epoll, &mut driver, &mut hooks, Duration::from_millis(60));
        driver.complete(&epoll, 2, 0, "DIST 1".to_string(), Instant::now(), &mut hooks);
        spin(&epoll, &mut driver, &mut hooks, Duration::from_millis(60));
        driver.complete(&epoll, 2, 1, "DIST 2".to_string(), Instant::now(), &mut hooks);
        spin(&epoll, &mut driver, &mut hooks, Duration::from_millis(60));
        assert_eq!(hooks.reaped, 0, "progress within each deadline window");
        assert_eq!(driver.conn_count(), 1);
    }
}
