//! The shared serving state: an epoch-tagged, hot-swappable
//! [`SharedOracle`] (immutable index, graph, and pooled query contexts per
//! generation) fronted by an optional [`ShardedCache`] and a
//! [`ServeMetrics`] block.
//!
//! Everything here is `&self`: one `Arc<QueryService>` is handed to every
//! connection handler and batch worker in the process. Range validation
//! happens here so both the TCP layer and in-process callers get the same
//! errors.
//!
//! # Hot reload
//!
//! The index lives behind an [`EpochCell`]. Each query pins one generation
//! ([`QueryService::snapshot`]) and uses it for validation, the cache tag,
//! and the computation, so a concurrent [`reload`](QueryService::reload)
//! never tears a query: in-flight queries finish on the epoch they started
//! on while new queries observe the new one. The cache is cleared exactly
//! once per swap, and its entries are epoch-tagged so even a racing
//! old-epoch re-insert after the clear can never satisfy a new-epoch
//! lookup.

use crate::cache::{CacheConfig, CacheStats, ShardedCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::serving::ServingIndex;
use hcl_core::landmarks::LandmarkStrategy;
use hcl_core::update::{apply_edit, EdgeEdit, PairFilter, UpdateError};
use hcl_core::{EpochCell, HighwayCoverLabelling, OracleEpoch, QueryContext, SharedOracle};
use hcl_graph::{CsrGraph, VertexId};
use hcl_store::PackedOracle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A query the service cannot answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A vertex id at or beyond the graph's vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The graph's vertex count.
        n: usize,
    },
    /// The worker queue is saturated and the request was shed. On the
    /// wire this is exactly `ERR busy` — clients should back off and
    /// retry.
    Overloaded,
    /// The request sat on the queue past its deadline; the answer would
    /// have arrived too late to be useful, so no work was done.
    DeadlineExpired,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
            QueryError::Overloaded => write!(f, "busy"),
            QueryError::DeadlineExpired => write!(f, "deadline expired"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A reload request the service cannot honour. The previous index keeps
/// serving untouched whenever a reload fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReloadError {
    /// Reading the graph or index file failed (I/O or format).
    Load(String),
    /// The index was built over a graph of a different size.
    Mismatch {
        /// Vertices in the freshly loaded graph.
        graph_vertices: usize,
        /// Vertices the index file claims.
        index_vertices: usize,
    },
    /// Building a labelling in-process from the graph failed.
    Build(String),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Load(msg) => write!(f, "reload failed: {msg}"),
            ReloadError::Mismatch { graph_vertices, index_vertices } => write!(
                f,
                "reload failed: index has {index_vertices} vertices but graph has \
                 {graph_vertices} — wrong index for this graph?"
            ),
            ReloadError::Build(msg) => write!(f, "reload failed building labelling: {msg}"),
        }
    }
}

impl std::error::Error for ReloadError {}

/// An `UPDATE` the service cannot apply. The serving index is untouched
/// whenever an update fails — failure happens strictly before the swap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateApplyError {
    /// The current generation serves from a packed (memory-mapped) file,
    /// which is immutable by construction; `RELOAD` an in-memory index
    /// first.
    Packed,
    /// The edit itself was rejected (out of range, self-loop, duplicate
    /// insert, missing delete, or a label-distance overflow).
    Apply(UpdateError),
}

impl std::fmt::Display for UpdateApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateApplyError::Packed => {
                write!(f, "update rejected: serving a packed index; reload in-memory first")
            }
            UpdateApplyError::Apply(e) => write!(f, "update rejected: {e}"),
        }
    }
}

impl std::error::Error for UpdateApplyError {}

/// Byte sizes of one index generation, as reported by `STATS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexSizes {
    /// Queryable index: label entries + offsets + highway matrix. For a
    /// packed generation this is the compressed on-file footprint of those
    /// sections.
    pub index_bytes: usize,
    /// The precomputed sparsified CSR `G[V∖R]` the searches traverse.
    pub sparse_bytes: usize,
    /// Edges surviving sparsification.
    pub sparse_edges: usize,
    /// Total bytes of the packed `.hclx` file backing the generation
    /// (0 when serving from memory).
    pub store_bytes: usize,
    /// Bytes the same index occupies in the plain `HCLIDX01` serialisation
    /// — the baseline for the packed compression ratio.
    pub plain_index_bytes: usize,
    /// Bytes of the contiguous label rank lane (`u16` per entry). For a
    /// packed generation this is the lane footprint the delta-varint
    /// streams decode into at query time.
    pub rank_lane_bytes: usize,
    /// Bytes of the contiguous label distance lane (`u16` per entry).
    pub dist_lane_bytes: usize,
}

/// Shared per-process serving state; see the module docs.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use hcl_core::HighwayCoverLabelling;
/// use hcl_server::QueryService;
///
/// let g = Arc::new(hcl_graph::generate::barabasi_albert(300, 4, 7));
/// let landmarks = hcl_graph::order::top_degree(&g, 8);
/// let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
/// let service = QueryService::from_parts(g, Arc::new(labelling), 1 << 10);
///
/// let d = service.distance(0, 299).unwrap();
/// assert_eq!(service.distance(0, 299).unwrap(), d); // repeat: a cache hit
/// assert!(service.cache_stats().hits >= 1);
/// assert_eq!(service.epoch(), 0, "no reload has happened");
/// assert!(service.distance(0, 300).is_err(), "out of range");
/// ```
#[derive(Debug)]
pub struct QueryService {
    index: EpochCell<ServingIndex>,
    cache: Option<ShardedCache>,
    metrics: ServeMetrics,
    /// Wall-clock microseconds the last successful
    /// [`reload_from_paths`](Self::reload_from_paths) spent loading (0
    /// until one happens) — `STATS load_us`, the number the mmap reload
    /// path exists to shrink.
    load_micros: AtomicU64,
    /// Per-request deadline in nanoseconds (0 = none): work still queued
    /// this long after submission resolves `ERR deadline expired` instead
    /// of computing an answer nobody is waiting for.
    deadline_nanos: AtomicU64,
}

impl QueryService {
    /// Builds a service over an in-memory oracle, with a cache when
    /// `cache_capacity > 0`.
    pub fn new(oracle: SharedOracle, cache_capacity: usize) -> Self {
        QueryService::with_index(ServingIndex::Memory(oracle), cache_capacity)
    }

    /// Builds a service over any index backend (in-memory or packed), with
    /// a cache when `cache_capacity > 0`.
    pub fn with_index(index: ServingIndex, cache_capacity: usize) -> Self {
        let cache = (cache_capacity > 0).then(|| {
            ShardedCache::new(CacheConfig { capacity: cache_capacity, ..Default::default() })
        });
        QueryService {
            index: EpochCell::new(index),
            cache,
            metrics: ServeMetrics::default(),
            load_micros: AtomicU64::new(0),
            deadline_nanos: AtomicU64::new(0),
        }
    }

    /// Sets the per-request deadline (`None` disables it; `Some(ZERO)`
    /// expires everything immediately — it is stored as 1 ns, not as the
    /// disabled sentinel). Applies to requests submitted from then on;
    /// `&self` so it can be configured after the service is shared.
    pub fn set_request_deadline(&self, deadline: Option<std::time::Duration>) {
        let nanos = deadline.map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1));
        self.deadline_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The configured per-request deadline, if any.
    pub fn request_deadline(&self) -> Option<std::time::Duration> {
        match self.deadline_nanos.load(Ordering::Relaxed) {
            0 => None,
            nanos => Some(std::time::Duration::from_nanos(nanos)),
        }
    }

    /// Convenience constructor from the index halves.
    pub fn from_parts(
        graph: Arc<CsrGraph>,
        labelling: Arc<HighwayCoverLabelling>,
        cache_capacity: usize,
    ) -> Self {
        QueryService::new(SharedOracle::new(graph, labelling), cache_capacity)
    }

    /// Pins the current index generation. Hold the returned `Arc` for the
    /// whole of one logical operation (a query, a batch) so a concurrent
    /// reload cannot tear it.
    pub fn snapshot(&self) -> Arc<OracleEpoch<ServingIndex>> {
        self.index.load()
    }

    /// The current index epoch (0 until the first reload).
    pub fn epoch(&self) -> u64 {
        self.index.epoch()
    }

    /// The distance cache, when serving with one.
    pub fn cache(&self) -> Option<&ShardedCache> {
        self.cache.as_ref()
    }

    /// The serving counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Number of vertices queries may currently address.
    pub fn num_vertices(&self) -> usize {
        self.snapshot().index().num_vertices()
    }

    /// Validates that both endpoints are in range for the current index.
    /// Batch submission validates against one pinned snapshot instead —
    /// see [`check_pair_in`](Self::check_pair_in).
    pub fn check_pair(&self, s: VertexId, t: VertexId) -> Result<(), QueryError> {
        Self::check_pair_in(&self.snapshot(), s, t)
    }

    /// Validates both endpoints against one pinned index generation.
    pub fn check_pair_in(
        index: &OracleEpoch<ServingIndex>,
        s: VertexId,
        t: VertexId,
    ) -> Result<(), QueryError> {
        let n = index.index().num_vertices();
        for v in [s, t] {
            if v as usize >= n {
                return Err(QueryError::VertexOutOfRange { vertex: v, n });
            }
        }
        Ok(())
    }

    /// Answers one query through the cache, using a pooled context only on
    /// a miss — a hit never touches the context pool. Counts towards the
    /// `queries` metric. The whole query runs against one pinned index
    /// generation.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Result<Option<u32>, QueryError> {
        let snap = self.snapshot();
        Self::check_pair_in(&snap, s, t)?;
        ServeMetrics::bump(&self.metrics.queries);
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(s, t, snap.epoch()) {
                return Ok(hit);
            }
        }
        let mut ctx = snap.index().context_pool().checkout();
        let d = self.timed_distance(&snap, &mut ctx, s, t);
        if let Some(cache) = &self.cache {
            cache.insert(s, t, snap.epoch(), d);
        }
        Ok(d)
    }

    /// Cache-through distance for callers that hold their own context and
    /// pinned snapshot (batch workers). Endpoints must already be validated
    /// against `snap`; does **not** bump request metrics — the batch layer
    /// counts whole requests.
    pub(crate) fn cached_distance_with(
        &self,
        snap: &OracleEpoch<ServingIndex>,
        ctx: &mut QueryContext,
        s: VertexId,
        t: VertexId,
    ) -> Option<u32> {
        debug_assert!(Self::check_pair_in(snap, s, t).is_ok());
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(s, t, snap.epoch()) {
                return hit;
            }
            let d = self.timed_distance(snap, ctx, s, t);
            cache.insert(s, t, snap.epoch(), d);
            d
        } else {
            self.timed_distance(snap, ctx, s, t)
        }
    }

    /// Uncached distance with the merge/search phase split folded into the
    /// cumulative [`ServeMetrics`] counters. Every wire query that misses
    /// the cache — single `QUERY` and `BATCH` members alike — funnels
    /// through here, so `METRICS` reports the real phase mix of served
    /// traffic.
    fn timed_distance(
        &self,
        snap: &OracleEpoch<ServingIndex>,
        ctx: &mut QueryContext,
        s: VertexId,
        t: VertexId,
    ) -> Option<u32> {
        let (d, phases) = snap.index().distance_with_timed(ctx, s, t);
        ServeMetrics::add(&self.metrics.merge_ns, phases.merge_ns);
        ServeMetrics::add(&self.metrics.search_ns, phases.search_ns);
        if phases.searched {
            ServeMetrics::bump(&self.metrics.searched_queries);
        }
        d
    }

    /// Swaps in a freshly built in-memory oracle as the next index
    /// generation; see [`reload_index`](Self::reload_index).
    pub fn reload(&self, oracle: SharedOracle) -> u64 {
        self.reload_index(ServingIndex::Memory(oracle))
    }

    /// Swaps in any index backend as the next generation and clears the
    /// cache (exactly once per swap). In-flight queries finish on the old
    /// generation; returns the new epoch.
    pub fn reload_index(&self, index: ServingIndex) -> u64 {
        let swapped = self.index.swap(index);
        // Clearing after the swap bounds the stale window: entries inserted
        // for the *new* epoch between these two lines are dropped (only a
        // tiny warm-up loss), while old-epoch stragglers that sneak in
        // after the clear are fenced off by their epoch tag.
        if let Some(cache) = &self.cache {
            cache.clear();
        }
        ServeMetrics::bump(&self.metrics.reloads);
        swapped.epoch()
    }

    /// Applies one incremental edge edit to the current in-memory
    /// generation and publishes the patched index as a new epoch, without
    /// rebuilding labels or clearing the cache wholesale.
    ///
    /// Returns `(new_epoch, affected_vertices)`. The whole operation is
    /// copy-on-write: queries pin either the old generation or the new one,
    /// never a half-patched index. Cached answers are *retagged*, not
    /// dropped — a [`PairFilter`] (two BFS rows from the edit endpoints)
    /// certifies exactly which pairs provably kept their distance, and only
    /// those carry over to the new epoch; the rest age out as stale misses.
    ///
    /// Concurrent updates/reloads are serialised by the caller (the reactor
    /// runs updates under the same busy gate as `RELOAD`); racing this
    /// method unserialised is safe for queries but may strand retagged
    /// cache entries, costing warm-up only.
    pub fn apply_update(&self, edit: EdgeEdit) -> Result<(u64, u64), UpdateApplyError> {
        let snap = self.snapshot();
        let oracle = snap.index().as_memory().ok_or(UpdateApplyError::Packed)?;
        let result = apply_edit(oracle.graph(), oracle.labelling(), oracle.sparse_view(), edit)
            .map_err(UpdateApplyError::Apply)?;
        let affected = result.affected_vertices as u64;
        let filter = PairFilter::for_edit(oracle.graph(), &result.graph, edit);
        let next = SharedOracle::from_parts(
            Arc::new(result.graph),
            Arc::new(result.labelling),
            Arc::new(result.sparse),
        );
        let old_epoch = snap.epoch();
        let swapped = self.index.swap(ServingIndex::Memory(next));
        let new_epoch = swapped.epoch();
        if let Some(cache) = &self.cache {
            cache.retag(old_epoch, new_epoch, |s, t, d| filter.keeps(s, t, d));
        }
        ServeMetrics::bump(&self.metrics.updates_applied);
        ServeMetrics::add(&self.metrics.update_affected_vertices, affected);
        Ok((new_epoch, affected))
    }

    /// Loads the next index generation from disk and swaps it in via
    /// [`reload_index`](Self::reload_index). On any error the current
    /// index keeps serving.
    ///
    /// Two layouts are accepted, distinguished by extension:
    ///
    /// * `graph_path` ending in `.hclx` — a packed `hcl-store` index. The
    ///   file is memory-mapped and validated, **not** deserialised; it is
    ///   self-contained, so passing `index_path` alongside it is an error.
    /// * anything else — a graph file, optionally with a plain `index_path`
    ///   labelling. Without one the labelling is built in-process over the
    ///   graph's top-`landmarks` degree vertices.
    ///
    /// The wall-clock load time is recorded for `STATS load_us`.
    pub fn reload_from_paths(
        &self,
        graph_path: &str,
        index_path: Option<&str>,
        landmarks: usize,
    ) -> Result<u64, ReloadError> {
        let started = Instant::now();
        if hcl_store::is_packed_path(graph_path) {
            if let Some(extra) = index_path {
                return Err(ReloadError::Load(format!(
                    "{graph_path} is a self-contained packed index; unexpected second path {extra}"
                )));
            }
            let oracle = PackedOracle::open(graph_path)
                .map_err(|e| ReloadError::Load(format!("{graph_path}: {e}")))?;
            let epoch = self.reload_index(ServingIndex::Packed(oracle));
            self.load_micros.store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
            return Ok(epoch);
        }
        let graph = hcl_graph::io::load_auto(graph_path)
            .map_err(|e| ReloadError::Load(format!("{graph_path}: {e}")))?;
        let graph = Arc::new(graph);
        let labelling = match index_path {
            Some(path) => hcl_core::io::load_labelling(path)
                .map_err(|e| ReloadError::Load(format!("{path}: {e}")))?,
            None => {
                let landmarks = LandmarkStrategy::TopDegree(landmarks).select(&graph);
                HighwayCoverLabelling::build_parallel(&graph, &landmarks, 0)
                    .map_err(|e| ReloadError::Build(e.to_string()))?
                    .0
            }
        };
        if labelling.labels().num_vertices() != graph.num_vertices() {
            return Err(ReloadError::Mismatch {
                graph_vertices: graph.num_vertices(),
                index_vertices: labelling.labels().num_vertices(),
            });
        }
        let epoch = self.reload(SharedOracle::new(graph, Arc::new(labelling)));
        self.load_micros.store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        Ok(epoch)
    }

    /// Sizes of the currently serving index generation (see
    /// [`ServingIndex::sizes`]).
    pub fn index_sizes(&self) -> IndexSizes {
        self.snapshot().index().sizes()
    }

    /// Microseconds the last successful disk reload spent loading (0 until
    /// one happens).
    pub fn last_load_micros(&self) -> u64 {
        self.load_micros.load(Ordering::Relaxed)
    }

    /// Cache statistics (zeroed when serving without a cache).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Metric counters at this instant.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(n: usize, seed: u64, k: usize) -> SharedOracle {
        let (g, labelling) = hcl_core::testing::ba_fixture(n, 4, seed, k);
        SharedOracle::new(g, labelling)
    }

    pub(crate) fn test_service(cache_capacity: usize) -> QueryService {
        let (g, labelling) = hcl_core::testing::ba_fixture(400, 4, 21, 10);
        QueryService::from_parts(g, labelling, cache_capacity)
    }

    #[test]
    fn distance_checks_range() {
        let service = test_service(0);
        assert!(service.distance(0, 399).is_ok());
        assert_eq!(
            service.distance(0, 400),
            Err(QueryError::VertexOutOfRange { vertex: 400, n: 400 })
        );
        assert_eq!(
            service.distance(1_000_000, 3),
            Err(QueryError::VertexOutOfRange { vertex: 1_000_000, n: 400 })
        );
    }

    #[test]
    fn cache_on_and_off_agree() {
        let with = test_service(1 << 10);
        let without = test_service(0);
        for i in 0..300u32 {
            let (s, t) = ((i * 7) % 400, (i * 13 + 1) % 400);
            let a = with.distance(s, t).unwrap();
            let b = without.distance(s, t).unwrap();
            assert_eq!(a, b, "d({s}, {t})");
            // Ask again to exercise the hit path.
            assert_eq!(with.distance(s, t).unwrap(), a);
        }
        let stats = with.cache_stats();
        assert!(stats.hits >= 300, "every repeat should hit, saw {}", stats.hits);
        assert_eq!(without.cache_stats(), CacheStats::default());
    }

    #[test]
    fn metrics_count_queries() {
        let service = test_service(16);
        for _ in 0..5 {
            service.distance(1, 2).unwrap();
        }
        let snap = service.metrics_snapshot();
        assert_eq!(snap.queries, 5);
        assert_eq!(snap.total_distances(), 5);
    }

    #[test]
    fn reload_swaps_answers_and_clears_the_cache() {
        let service = QueryService::new(oracle(300, 7, 8), 1 << 10);
        assert_eq!(service.epoch(), 0);

        // Warm the cache on the first index.
        let queries: Vec<(u32, u32)> =
            (0..100u32).map(|i| ((i * 3) % 300, (i * 11 + 1) % 300)).collect();
        let before: Vec<_> =
            queries.iter().map(|&(s, t)| service.distance(s, t).unwrap()).collect();
        for (&(s, t), d) in queries.iter().zip(&before) {
            assert_eq!(service.distance(s, t).unwrap(), *d, "warm hit");
        }
        assert!(service.cache_stats().hits >= 100);

        // Swap in a different graph; every answer must now come from it.
        let new_oracle = oracle(300, 8, 8);
        let expected: Vec<_> = queries.iter().map(|&(s, t)| new_oracle.distance(s, t)).collect();
        assert_eq!(service.reload(new_oracle), 1);
        assert_eq!(service.epoch(), 1);
        assert_eq!(service.metrics_snapshot().reloads, 1);

        let after: Vec<_> = queries.iter().map(|&(s, t)| service.distance(s, t).unwrap()).collect();
        assert_eq!(after, expected, "post-reload answers come from the new index");
        assert_ne!(after, before, "the fixture graphs must actually differ");
    }

    #[test]
    fn pinned_snapshot_survives_a_reload() {
        let service = QueryService::new(oracle(200, 1, 6), 0);
        let snap = service.snapshot();
        let d = snap.index().distance(0, 199);
        service.reload(oracle(100, 2, 4));
        // The pinned generation still answers, on its own graph.
        assert_eq!(snap.index().num_vertices(), 200);
        assert_eq!(snap.index().distance(0, 199), d);
        // New queries see the new, smaller index.
        assert_eq!(service.num_vertices(), 100);
        assert!(service.distance(0, 199).is_err(), "199 is out of range after the swap");
    }

    #[test]
    fn apply_update_publishes_patched_answers_under_a_new_epoch() {
        let (g, labelling) = hcl_core::testing::ba_fixture(300, 4, 5, 8);
        let service = QueryService::from_parts(Arc::clone(&g), labelling, 1 << 10);

        // A pair far from the edit endpoints, warmed into the cache.
        let far = service.distance(250, 260).unwrap();
        assert_eq!(service.distance(250, 260).unwrap(), far, "warm hit");

        // Find an absent edge to insert.
        let (u, v) = (0..300u32)
            .flat_map(|a| ((a + 1)..300).map(move |b| (a, b)))
            .find(|&(a, b)| !g.has_edge(a, b))
            .expect("BA graph is not complete");
        let (epoch, _) = service.apply_update(EdgeEdit::Add(u, v)).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(service.epoch(), 1);
        assert_eq!(service.metrics_snapshot().updates_applied, 1);

        // Answers now come from the patched graph.
        let patched = g.with_edge(u, v).unwrap();
        let truth = hcl_graph::traversal::bfs_distances(&patched, u);
        for t in (0..300).step_by(17) {
            let expect = (truth[t as usize] != hcl_graph::INF).then_some(truth[t as usize]);
            assert_eq!(service.distance(u, t).unwrap(), expect, "d({u}, {t}) after ADD");
        }

        // Deleting the same edge restores the original metric.
        let (epoch, _) = service.apply_update(EdgeEdit::Delete(u, v)).unwrap();
        assert_eq!(epoch, 2);
        let truth = hcl_graph::traversal::bfs_distances(&g, u);
        for t in (0..300).step_by(17) {
            let expect = (truth[t as usize] != hcl_graph::INF).then_some(truth[t as usize]);
            assert_eq!(service.distance(u, t).unwrap(), expect, "d({u}, {t}) after DEL");
        }
    }

    #[test]
    fn apply_update_retags_unaffected_cache_entries() {
        // A path graph makes "far from the edit" easy to reason about.
        let g = Arc::new(hcl_graph::generate::path(50));
        let landmarks = hcl_graph::order::top_degree(&g, 2);
        let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let service = QueryService::from_parts(Arc::clone(&g), Arc::new(labelling), 1 << 10);

        // Warm a pair whose distance an edit at the far end cannot change.
        assert_eq!(service.distance(0, 3).unwrap(), Some(3));
        let hits_before = service.cache_stats().hits;

        // Edit at the other end of the path.
        service.apply_update(EdgeEdit::Add(47, 49)).unwrap();

        // The warmed pair must hit under the new epoch — retagged, not
        // recomputed, and certainly not cleared.
        assert_eq!(service.distance(0, 3).unwrap(), Some(3));
        assert_eq!(service.cache_stats().hits, hits_before + 1, "retagged entry must hit");
        assert_eq!(service.cache_stats().stale, 0);
    }

    #[test]
    fn rejected_update_leaves_the_index_untouched() {
        let service = test_service(16);
        let before = service.distance(0, 399).unwrap();
        // Edge (0, 1) exists in every BA fixture: a duplicate insert fails.
        let err = service.apply_update(EdgeEdit::Add(0, 1)).unwrap_err();
        assert!(matches!(err, UpdateApplyError::Apply(_)), "{err:?}");
        assert_eq!(service.epoch(), 0, "failed update must not bump the epoch");
        assert_eq!(service.metrics_snapshot().updates_applied, 0);
        assert_eq!(service.distance(0, 399).unwrap(), before);
    }

    #[test]
    fn failed_reload_from_paths_keeps_serving_the_old_index() {
        let service = QueryService::new(oracle(150, 3, 6), 16);
        let before = service.distance(0, 149).unwrap();
        let err = service.reload_from_paths("/nonexistent/graph.hclg", None, 4).unwrap_err();
        assert!(matches!(err, ReloadError::Load(_)), "{err:?}");
        assert_eq!(service.epoch(), 0, "failed reload must not bump the epoch");
        assert_eq!(service.metrics_snapshot().reloads, 0);
        assert_eq!(service.distance(0, 149).unwrap(), before);
    }
}
