//! The shared serving state: an epoch-tagged, hot-swappable
//! [`SharedOracle`] (immutable index, graph, and pooled query contexts per
//! generation) fronted by an optional [`ShardedCache`] and a
//! [`ServeMetrics`] block.
//!
//! Everything here is `&self`: one `Arc<QueryService>` is handed to every
//! connection handler and batch worker in the process. Range validation
//! happens here so both the TCP layer and in-process callers get the same
//! errors.
//!
//! # Hot reload
//!
//! The index lives behind an [`EpochCell`]. Each query pins one generation
//! ([`QueryService::snapshot`]) and uses it for validation, the cache tag,
//! and the computation, so a concurrent [`reload`](QueryService::reload)
//! never tears a query: in-flight queries finish on the epoch they started
//! on while new queries observe the new one. The cache is cleared exactly
//! once per swap, and its entries are epoch-tagged so even a racing
//! old-epoch re-insert after the clear can never satisfy a new-epoch
//! lookup.

use crate::cache::{CacheConfig, CacheStats, ShardedCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use hcl_core::landmarks::LandmarkStrategy;
use hcl_core::{EpochCell, HighwayCoverLabelling, OracleEpoch, QueryContext, SharedOracle};
use hcl_graph::{CsrGraph, VertexId};
use std::sync::Arc;

/// A query the service cannot answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A vertex id at or beyond the graph's vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The graph's vertex count.
        n: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A reload request the service cannot honour. The previous index keeps
/// serving untouched whenever a reload fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReloadError {
    /// Reading the graph or index file failed (I/O or format).
    Load(String),
    /// The index was built over a graph of a different size.
    Mismatch {
        /// Vertices in the freshly loaded graph.
        graph_vertices: usize,
        /// Vertices the index file claims.
        index_vertices: usize,
    },
    /// Building a labelling in-process from the graph failed.
    Build(String),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Load(msg) => write!(f, "reload failed: {msg}"),
            ReloadError::Mismatch { graph_vertices, index_vertices } => write!(
                f,
                "reload failed: index has {index_vertices} vertices but graph has \
                 {graph_vertices} — wrong index for this graph?"
            ),
            ReloadError::Build(msg) => write!(f, "reload failed building labelling: {msg}"),
        }
    }
}

impl std::error::Error for ReloadError {}

/// Byte sizes of one index generation, as reported by `STATS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexSizes {
    /// Queryable index: label entries + offsets + highway matrix.
    pub index_bytes: usize,
    /// The precomputed sparsified CSR `G[V∖R]` the searches traverse.
    pub sparse_bytes: usize,
    /// Edges surviving sparsification.
    pub sparse_edges: usize,
}

/// Shared per-process serving state; see the module docs.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use hcl_core::HighwayCoverLabelling;
/// use hcl_server::QueryService;
///
/// let g = Arc::new(hcl_graph::generate::barabasi_albert(300, 4, 7));
/// let landmarks = hcl_graph::order::top_degree(&g, 8);
/// let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
/// let service = QueryService::from_parts(g, Arc::new(labelling), 1 << 10);
///
/// let d = service.distance(0, 299).unwrap();
/// assert_eq!(service.distance(0, 299).unwrap(), d); // repeat: a cache hit
/// assert!(service.cache_stats().hits >= 1);
/// assert_eq!(service.epoch(), 0, "no reload has happened");
/// assert!(service.distance(0, 300).is_err(), "out of range");
/// ```
#[derive(Debug)]
pub struct QueryService {
    index: EpochCell,
    cache: Option<ShardedCache>,
    metrics: ServeMetrics,
}

impl QueryService {
    /// Builds a service over an oracle, with a cache when
    /// `cache_capacity > 0`.
    pub fn new(oracle: SharedOracle, cache_capacity: usize) -> Self {
        let cache = (cache_capacity > 0).then(|| {
            ShardedCache::new(CacheConfig { capacity: cache_capacity, ..Default::default() })
        });
        QueryService { index: EpochCell::new(oracle), cache, metrics: ServeMetrics::default() }
    }

    /// Convenience constructor from the index halves.
    pub fn from_parts(
        graph: Arc<CsrGraph>,
        labelling: Arc<HighwayCoverLabelling>,
        cache_capacity: usize,
    ) -> Self {
        QueryService::new(SharedOracle::new(graph, labelling), cache_capacity)
    }

    /// Pins the current index generation. Hold the returned `Arc` for the
    /// whole of one logical operation (a query, a batch) so a concurrent
    /// reload cannot tear it.
    pub fn snapshot(&self) -> Arc<OracleEpoch> {
        self.index.load()
    }

    /// The current index epoch (0 until the first reload).
    pub fn epoch(&self) -> u64 {
        self.index.epoch()
    }

    /// The distance cache, when serving with one.
    pub fn cache(&self) -> Option<&ShardedCache> {
        self.cache.as_ref()
    }

    /// The serving counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Number of vertices queries may currently address.
    pub fn num_vertices(&self) -> usize {
        self.snapshot().num_vertices()
    }

    /// Validates that both endpoints are in range for the current index.
    /// Batch submission validates against one pinned snapshot instead —
    /// see [`check_pair_in`](Self::check_pair_in).
    pub fn check_pair(&self, s: VertexId, t: VertexId) -> Result<(), QueryError> {
        Self::check_pair_in(&self.snapshot(), s, t)
    }

    /// Validates both endpoints against one pinned index generation.
    pub fn check_pair_in(index: &OracleEpoch, s: VertexId, t: VertexId) -> Result<(), QueryError> {
        let n = index.num_vertices();
        for v in [s, t] {
            if v as usize >= n {
                return Err(QueryError::VertexOutOfRange { vertex: v, n });
            }
        }
        Ok(())
    }

    /// Answers one query through the cache, using a pooled context only on
    /// a miss — a hit never touches the context pool. Counts towards the
    /// `queries` metric. The whole query runs against one pinned index
    /// generation.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Result<Option<u32>, QueryError> {
        let snap = self.snapshot();
        Self::check_pair_in(&snap, s, t)?;
        ServeMetrics::bump(&self.metrics.queries);
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(s, t, snap.epoch()) {
                return Ok(hit);
            }
        }
        let oracle = snap.oracle();
        let mut ctx = oracle.context_pool().checkout();
        let d = oracle.distance_with(&mut ctx, s, t);
        if let Some(cache) = &self.cache {
            cache.insert(s, t, snap.epoch(), d);
        }
        Ok(d)
    }

    /// Cache-through distance for callers that hold their own context and
    /// pinned snapshot (batch workers). Endpoints must already be validated
    /// against `snap`; does **not** bump request metrics — the batch layer
    /// counts whole requests.
    pub(crate) fn cached_distance_with(
        &self,
        snap: &OracleEpoch,
        ctx: &mut QueryContext,
        s: VertexId,
        t: VertexId,
    ) -> Option<u32> {
        debug_assert!(Self::check_pair_in(snap, s, t).is_ok());
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(s, t, snap.epoch()) {
                return hit;
            }
            let d = snap.oracle().distance_with(ctx, s, t);
            cache.insert(s, t, snap.epoch(), d);
            d
        } else {
            snap.oracle().distance_with(ctx, s, t)
        }
    }

    /// Swaps in a freshly built oracle as the next index generation and
    /// clears the cache (exactly once per swap). In-flight queries finish
    /// on the old generation; returns the new epoch.
    pub fn reload(&self, oracle: SharedOracle) -> u64 {
        let swapped = self.index.swap(oracle);
        // Clearing after the swap bounds the stale window: entries inserted
        // for the *new* epoch between these two lines are dropped (only a
        // tiny warm-up loss), while old-epoch stragglers that sneak in
        // after the clear are fenced off by their epoch tag.
        if let Some(cache) = &self.cache {
            cache.clear();
        }
        ServeMetrics::bump(&self.metrics.reloads);
        swapped.epoch()
    }

    /// Loads a graph (and optionally a prebuilt index) from disk and swaps
    /// it in via [`reload`](Self::reload). Without an index path the
    /// labelling is built in-process over the graph's top-`landmarks`
    /// degree vertices. On any error the current index keeps serving.
    pub fn reload_from_paths(
        &self,
        graph_path: &str,
        index_path: Option<&str>,
        landmarks: usize,
    ) -> Result<u64, ReloadError> {
        let graph = hcl_graph::io::load_auto(graph_path)
            .map_err(|e| ReloadError::Load(format!("{graph_path}: {e}")))?;
        let graph = Arc::new(graph);
        let labelling = match index_path {
            Some(path) => hcl_core::io::load_labelling(path)
                .map_err(|e| ReloadError::Load(format!("{path}: {e}")))?,
            None => {
                let landmarks = LandmarkStrategy::TopDegree(landmarks).select(&graph);
                HighwayCoverLabelling::build_parallel(&graph, &landmarks, 0)
                    .map_err(|e| ReloadError::Build(e.to_string()))?
                    .0
            }
        };
        if labelling.labels().num_vertices() != graph.num_vertices() {
            return Err(ReloadError::Mismatch {
                graph_vertices: graph.num_vertices(),
                index_vertices: labelling.labels().num_vertices(),
            });
        }
        Ok(self.reload(SharedOracle::new(graph, Arc::new(labelling))))
    }

    /// Sizes of the currently serving index generation (labelling bytes
    /// plus the sparsified-view CSR the query path traverses).
    pub fn index_sizes(&self) -> IndexSizes {
        let snap = self.snapshot();
        let oracle = snap.oracle();
        let view = oracle.sparse_view();
        IndexSizes {
            index_bytes: oracle.labelling().index_bytes(),
            sparse_bytes: view.memory_bytes(),
            sparse_edges: view.num_edges(),
        }
    }

    /// Cache statistics (zeroed when serving without a cache).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Metric counters at this instant.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(n: usize, seed: u64, k: usize) -> SharedOracle {
        let (g, labelling) = hcl_core::testing::ba_fixture(n, 4, seed, k);
        SharedOracle::new(g, labelling)
    }

    pub(crate) fn test_service(cache_capacity: usize) -> QueryService {
        let (g, labelling) = hcl_core::testing::ba_fixture(400, 4, 21, 10);
        QueryService::from_parts(g, labelling, cache_capacity)
    }

    #[test]
    fn distance_checks_range() {
        let service = test_service(0);
        assert!(service.distance(0, 399).is_ok());
        assert_eq!(
            service.distance(0, 400),
            Err(QueryError::VertexOutOfRange { vertex: 400, n: 400 })
        );
        assert_eq!(
            service.distance(1_000_000, 3),
            Err(QueryError::VertexOutOfRange { vertex: 1_000_000, n: 400 })
        );
    }

    #[test]
    fn cache_on_and_off_agree() {
        let with = test_service(1 << 10);
        let without = test_service(0);
        for i in 0..300u32 {
            let (s, t) = ((i * 7) % 400, (i * 13 + 1) % 400);
            let a = with.distance(s, t).unwrap();
            let b = without.distance(s, t).unwrap();
            assert_eq!(a, b, "d({s}, {t})");
            // Ask again to exercise the hit path.
            assert_eq!(with.distance(s, t).unwrap(), a);
        }
        let stats = with.cache_stats();
        assert!(stats.hits >= 300, "every repeat should hit, saw {}", stats.hits);
        assert_eq!(without.cache_stats(), CacheStats::default());
    }

    #[test]
    fn metrics_count_queries() {
        let service = test_service(16);
        for _ in 0..5 {
            service.distance(1, 2).unwrap();
        }
        let snap = service.metrics_snapshot();
        assert_eq!(snap.queries, 5);
        assert_eq!(snap.total_distances(), 5);
    }

    #[test]
    fn reload_swaps_answers_and_clears_the_cache() {
        let service = QueryService::new(oracle(300, 7, 8), 1 << 10);
        assert_eq!(service.epoch(), 0);

        // Warm the cache on the first index.
        let queries: Vec<(u32, u32)> =
            (0..100u32).map(|i| ((i * 3) % 300, (i * 11 + 1) % 300)).collect();
        let before: Vec<_> =
            queries.iter().map(|&(s, t)| service.distance(s, t).unwrap()).collect();
        for (&(s, t), d) in queries.iter().zip(&before) {
            assert_eq!(service.distance(s, t).unwrap(), *d, "warm hit");
        }
        assert!(service.cache_stats().hits >= 100);

        // Swap in a different graph; every answer must now come from it.
        let new_oracle = oracle(300, 8, 8);
        let expected: Vec<_> = queries.iter().map(|&(s, t)| new_oracle.distance(s, t)).collect();
        assert_eq!(service.reload(new_oracle), 1);
        assert_eq!(service.epoch(), 1);
        assert_eq!(service.metrics_snapshot().reloads, 1);

        let after: Vec<_> = queries.iter().map(|&(s, t)| service.distance(s, t).unwrap()).collect();
        assert_eq!(after, expected, "post-reload answers come from the new index");
        assert_ne!(after, before, "the fixture graphs must actually differ");
    }

    #[test]
    fn pinned_snapshot_survives_a_reload() {
        let service = QueryService::new(oracle(200, 1, 6), 0);
        let snap = service.snapshot();
        let d = snap.oracle().distance(0, 199);
        service.reload(oracle(100, 2, 4));
        // The pinned generation still answers, on its own graph.
        assert_eq!(snap.num_vertices(), 200);
        assert_eq!(snap.oracle().distance(0, 199), d);
        // New queries see the new, smaller index.
        assert_eq!(service.num_vertices(), 100);
        assert!(service.distance(0, 199).is_err(), "199 is out of range after the swap");
    }

    #[test]
    fn failed_reload_from_paths_keeps_serving_the_old_index() {
        let service = QueryService::new(oracle(150, 3, 6), 16);
        let before = service.distance(0, 149).unwrap();
        let err = service.reload_from_paths("/nonexistent/graph.hclg", None, 4).unwrap_err();
        assert!(matches!(err, ReloadError::Load(_)), "{err:?}");
        assert_eq!(service.epoch(), 0, "failed reload must not bump the epoch");
        assert_eq!(service.metrics_snapshot().reloads, 0);
        assert_eq!(service.distance(0, 149).unwrap(), before);
    }
}
