//! The shared serving state: one [`SharedOracle`] (immutable index, graph,
//! and pooled query contexts) fronted by an optional [`ShardedCache`] and
//! a [`ServeMetrics`] block.
//!
//! Everything here is `&self`: one `Arc<QueryService>` is handed to every
//! connection handler and batch worker in the process. Range validation
//! happens here so both the TCP layer and in-process callers get the same
//! errors.

use crate::cache::{CacheConfig, CacheStats, ShardedCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use hcl_core::{HighwayCoverLabelling, QueryContext, SharedOracle};
use hcl_graph::{CsrGraph, VertexId};
use std::sync::Arc;

/// A query the service cannot answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A vertex id at or beyond the graph's vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The graph's vertex count.
        n: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Shared per-process serving state; see the module docs.
#[derive(Debug)]
pub struct QueryService {
    oracle: SharedOracle,
    cache: Option<ShardedCache>,
    metrics: ServeMetrics,
}

impl QueryService {
    /// Builds a service over an oracle, with a cache when
    /// `cache_capacity > 0`.
    pub fn new(oracle: SharedOracle, cache_capacity: usize) -> Self {
        let cache = (cache_capacity > 0).then(|| {
            ShardedCache::new(CacheConfig { capacity: cache_capacity, ..Default::default() })
        });
        QueryService { oracle, cache, metrics: ServeMetrics::default() }
    }

    /// Convenience constructor from the index halves.
    pub fn from_parts(
        graph: Arc<CsrGraph>,
        labelling: Arc<HighwayCoverLabelling>,
        cache_capacity: usize,
    ) -> Self {
        QueryService::new(SharedOracle::new(graph, labelling), cache_capacity)
    }

    /// The underlying shared oracle.
    pub fn oracle(&self) -> &SharedOracle {
        &self.oracle
    }

    /// The distance cache, when serving with one.
    pub fn cache(&self) -> Option<&ShardedCache> {
        self.cache.as_ref()
    }

    /// The serving counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Number of vertices queries may address.
    pub fn num_vertices(&self) -> usize {
        self.oracle.num_vertices()
    }

    /// Validates that both endpoints are in range.
    pub fn check_pair(&self, s: VertexId, t: VertexId) -> Result<(), QueryError> {
        let n = self.num_vertices();
        for v in [s, t] {
            if v as usize >= n {
                return Err(QueryError::VertexOutOfRange { vertex: v, n });
            }
        }
        Ok(())
    }

    /// Answers one query through the cache, using a pooled context only on
    /// a miss — a hit never touches the context pool. Counts towards the
    /// `queries` metric.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Result<Option<u32>, QueryError> {
        self.check_pair(s, t)?;
        ServeMetrics::bump(&self.metrics.queries);
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(s, t) {
                return Ok(hit);
            }
        }
        let mut ctx = self.oracle.context_pool().checkout();
        let d = self.oracle.distance_with(&mut ctx, s, t);
        if let Some(cache) = &self.cache {
            cache.insert(s, t, d);
        }
        Ok(d)
    }

    /// Cache-through distance for callers that hold their own context
    /// (batch workers). Endpoints must already be validated; does **not**
    /// bump request metrics — the batch layer counts whole requests.
    pub(crate) fn cached_distance_with(
        &self,
        ctx: &mut QueryContext,
        s: VertexId,
        t: VertexId,
    ) -> Option<u32> {
        debug_assert!(self.check_pair(s, t).is_ok());
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(s, t) {
                return hit;
            }
            let d = self.oracle.distance_with(ctx, s, t);
            cache.insert(s, t, d);
            d
        } else {
            self.oracle.distance_with(ctx, s, t)
        }
    }

    /// Cache statistics (zeroed when serving without a cache).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Metric counters at this instant.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::generate;

    pub(crate) fn test_service(cache_capacity: usize) -> QueryService {
        let g = Arc::new(generate::barabasi_albert(400, 4, 21));
        let landmarks = hcl_graph::order::top_degree(&g, 10);
        let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        QueryService::from_parts(g, Arc::new(labelling), cache_capacity)
    }

    #[test]
    fn distance_checks_range() {
        let service = test_service(0);
        assert!(service.distance(0, 399).is_ok());
        assert_eq!(
            service.distance(0, 400),
            Err(QueryError::VertexOutOfRange { vertex: 400, n: 400 })
        );
        assert_eq!(
            service.distance(1_000_000, 3),
            Err(QueryError::VertexOutOfRange { vertex: 1_000_000, n: 400 })
        );
    }

    #[test]
    fn cache_on_and_off_agree() {
        let with = test_service(1 << 10);
        let without = test_service(0);
        for i in 0..300u32 {
            let (s, t) = ((i * 7) % 400, (i * 13 + 1) % 400);
            let a = with.distance(s, t).unwrap();
            let b = without.distance(s, t).unwrap();
            assert_eq!(a, b, "d({s}, {t})");
            // Ask again to exercise the hit path.
            assert_eq!(with.distance(s, t).unwrap(), a);
        }
        let stats = with.cache_stats();
        assert!(stats.hits >= 300, "every repeat should hit, saw {}", stats.hits);
        assert_eq!(without.cache_stats(), CacheStats::default());
    }

    #[test]
    fn metrics_count_queries() {
        let service = test_service(16);
        for _ in 0..5 {
            service.distance(1, 2).unwrap();
        }
        let snap = service.metrics_snapshot();
        assert_eq!(snap.queries, 5);
        assert_eq!(snap.total_distances(), 5);
    }
}
