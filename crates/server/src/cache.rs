//! A sharded LRU cache for answered distance queries.
//!
//! Distances are symmetric, so keys are normalised `(min(s,t), max(s,t))`
//! pairs packed into a `u64`. The key hash picks one of N mutex-striped
//! shards (N rounded up to a power of two), each an intrusive-list LRU over
//! a slab — so two queries only contend when they land on the same shard,
//! and a shard's critical section is a hash lookup plus two list splices.
//!
//! Complex-network query workloads are heavily skewed (hubs appear in a
//! large fraction of pairs), which is exactly the regime where a small LRU
//! in front of a microsecond oracle pays for itself; the `serving`
//! benchmark measures the cold/warm difference.
//!
//! # Epoch tagging
//!
//! Every entry records the index *epoch* it was computed under (see
//! `hcl_core::epoch`). A lookup passes the caller's pinned epoch and only
//! entries with the same tag hit; a mismatch is reported as a miss (and
//! counted under [`CacheStats::stale`]). Hot reload clears the cache once
//! per swap, but clearing alone cannot stop an in-flight old-epoch query
//! from re-inserting its answer *after* the clear — the tag makes that
//! harmless: the stale entry can never satisfy a new-epoch lookup.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Slot index sentinel for "no entry".
const NIL: u32 = u32::MAX;

/// Cached encoding of `Option<u32>`: `u32::MAX` stands for "unreachable"
/// (real distances never reach it — labels are 16-bit).
const UNREACHABLE: u32 = u32::MAX;

/// Configuration for a [`ShardedCache`].
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in entries, split across shards. `0` disables
    /// construction ([`ShardedCache::new`] panics; callers gate on it).
    pub capacity: usize,
    /// Requested shard count; rounded up to a power of two and capped so
    /// every shard holds at least one entry.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: 1 << 16, shards: 16 }
    }
}

/// Point-in-time cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Misses caused by an entry tagged with a different epoch (a reload
    /// happened between the entry's computation and this lookup). A subset
    /// of `misses`.
    pub stale: u64,
    /// Entries displaced to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Total capacity in entries.
    pub capacity: usize,
    /// Number of shards.
    pub shards: usize,
}

/// One LRU shard: hash index into an intrusive doubly-linked list kept in a
/// slab, most-recent at `head`.
#[derive(Debug)]
struct Shard {
    map: HashMap<u64, u32>,
    slab: Vec<Entry>,
    head: u32,
    tail: u32,
    capacity: usize,
}

#[derive(Debug)]
struct Entry {
    key: u64,
    value: u32,
    /// Index epoch the value was computed under.
    epoch: u64,
    prev: u32,
    next: u32,
}

/// Outcome of a shard lookup under a specific epoch.
enum Found {
    /// Resident with a matching epoch tag.
    Hit(u32),
    /// Resident, but computed under a different epoch.
    Stale,
    /// Not resident.
    Miss,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let e = &self.slab[slot as usize];
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slab[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n as usize].prev = prev,
        }
    }

    fn link_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let e = &mut self.slab[slot as usize];
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn get(&mut self, key: u64, epoch: u64) -> Found {
        let Some(&slot) = self.map.get(&key) else { return Found::Miss };
        if self.slab[slot as usize].epoch != epoch {
            // A dead entry from another generation must not be promoted to
            // MRU — left in place, it ages out like any other cold entry
            // (or is overwritten when this key is re-inserted).
            return Found::Stale;
        }
        if self.head != slot {
            self.unlink(slot);
            self.link_front(slot);
        }
        Found::Hit(self.slab[slot as usize].value)
    }

    /// Inserts or refreshes `key`; returns `true` when an older entry was
    /// evicted to make room.
    fn insert(&mut self, key: u64, value: u32, epoch: u64) -> bool {
        if let Some(&slot) = self.map.get(&key) {
            let e = &mut self.slab[slot as usize];
            e.value = value;
            e.epoch = epoch;
            if self.head != slot {
                self.unlink(slot);
                self.link_front(slot);
            }
            return false;
        }
        if self.map.len() < self.capacity {
            let slot = self.slab.len() as u32;
            self.slab.push(Entry { key, value, epoch, prev: NIL, next: NIL });
            self.map.insert(key, slot);
            self.link_front(slot);
            return false;
        }
        // Full: repurpose the least-recently-used slot.
        let slot = self.tail;
        debug_assert_ne!(slot, NIL, "capacity >= 1 guarantees a tail when full");
        self.unlink(slot);
        let old_key = self.slab[slot as usize].key;
        self.map.remove(&old_key);
        {
            let e = &mut self.slab[slot as usize];
            e.key = key;
            e.value = value;
            e.epoch = epoch;
        }
        self.map.insert(key, slot);
        self.link_front(slot);
        true
    }
}

/// The sharded LRU distance cache.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    shard_mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
}

impl ShardedCache {
    /// Builds a cache from `config`. Panics when `config.capacity == 0`
    /// (callers express "no cache" by not constructing one).
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "cache capacity must be positive");
        let shards = config.shards.clamp(1, config.capacity).next_power_of_two();
        let per_shard = config.capacity.div_ceil(shards);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            shard_mask: shards as u64 - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity: per_shard * shards,
        }
    }

    /// The normalised key for an unordered pair.
    fn key(s: u32, t: u32) -> u64 {
        let (a, b) = if s <= t { (s, t) } else { (t, s) };
        (a as u64) << 32 | b as u64
    }

    /// Mixes a key into a shard index (splitmix64 finaliser, so adjacent
    /// vertex ids spread across shards).
    fn shard_of(&self, key: u64) -> usize {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) & self.shard_mask) as usize
    }

    /// Looks up the distance for `(s, t)` as computed under index `epoch`.
    /// `None` = not cached (or cached under a different epoch);
    /// `Some(None)` = cached as unreachable; `Some(Some(d))` = cached
    /// distance.
    pub fn get(&self, s: u32, t: u32, epoch: u64) -> Option<Option<u32>> {
        let key = Self::key(s, t);
        let found =
            self.shards[self.shard_of(key)].lock().expect("cache shard poisoned").get(key, epoch);
        match found {
            Found::Stale => {
                // An answer from another index generation must never be
                // served — report a (stale) miss; the caller recomputes and
                // re-inserts under its own epoch.
                self.stale.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Found::Hit(UNREACHABLE) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(None)
            }
            Found::Hit(d) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Some(d))
            }
            Found::Miss => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records the answer for `(s, t)` as computed under index `epoch`.
    pub fn insert(&self, s: u32, t: u32, epoch: u64, distance: Option<u32>) {
        let key = Self::key(s, t);
        let value = distance.unwrap_or(UNREACHABLE);
        let evicted = self.shards[self.shard_of(key)]
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, epoch);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity in entries (rounded up to fill every shard).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Empties every shard (counters are preserved). Called exactly once
    /// per index swap by `QueryService::reload` (epoch tags keep racing
    /// old-epoch re-inserts harmless), and by the benchmarks to measure
    /// cold-cache behaviour.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            shard.map.clear();
            shard.slab.clear();
            shard.head = NIL;
            shard.tail = NIL;
        }
    }

    /// Precise invalidation for an incremental update: every resident entry
    /// tagged `old_epoch` whose pair `keep(s, t, value)` certifies as
    /// unchanged is re-tagged to `new_epoch` (surviving the generation swap
    /// with its LRU position intact); entries the predicate rejects keep
    /// their old tag and age out as stale misses — no slab compaction, no
    /// lock held across shards. Returns how many entries were carried over.
    ///
    /// The predicate receives the normalised pair (`s <= t`) and the cached
    /// answer (`None` = cached as unreachable). It must only certify pairs
    /// whose distance is provably identical under both generations —
    /// soundness lives with the caller (see `hcl_core::update::PairFilter`).
    pub fn retag(
        &self,
        old_epoch: u64,
        new_epoch: u64,
        keep: impl Fn(u32, u32, Option<u32>) -> bool,
    ) -> usize {
        let mut kept = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            for entry in &mut shard.slab {
                if entry.epoch != old_epoch {
                    continue;
                }
                let (s, t) = ((entry.key >> 32) as u32, entry.key as u32);
                let value = (entry.value != UNREACHABLE).then_some(entry.value);
                if keep(s, t, value) {
                    entry.epoch = new_epoch;
                    kept += 1;
                }
            }
        }
        kept
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity,
            shards: self.shards.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(capacity: usize, shards: usize) -> ShardedCache {
        ShardedCache::new(CacheConfig { capacity, shards })
    }

    #[test]
    fn hit_after_insert_both_orders() {
        let cache = small(64, 4);
        assert_eq!(cache.get(3, 9, 0), None);
        cache.insert(3, 9, 0, Some(5));
        assert_eq!(cache.get(3, 9, 0), Some(Some(5)));
        assert_eq!(cache.get(9, 3, 0), Some(Some(5)), "keys are direction-normalised");
        cache.insert(7, 2, 0, None);
        assert_eq!(cache.get(2, 7, 0), Some(None), "unreachable is cached too");
        let stats = cache.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single shard of capacity 2 so the eviction order is observable.
        let cache = small(2, 1);
        cache.insert(0, 1, 0, Some(1));
        cache.insert(0, 2, 0, Some(2));
        assert_eq!(cache.get(0, 1, 0), Some(Some(1))); // refresh (0,1)
        cache.insert(0, 3, 0, Some(3)); // evicts (0,2)
        assert_eq!(cache.get(0, 2, 0), None, "LRU entry evicted");
        assert_eq!(cache.get(0, 1, 0), Some(Some(1)), "refreshed entry kept");
        assert_eq!(cache.get(0, 3, 0), Some(Some(3)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn update_refreshes_without_eviction() {
        let cache = small(2, 1);
        cache.insert(0, 1, 0, Some(1));
        cache.insert(0, 2, 0, Some(2));
        cache.insert(0, 1, 0, Some(10)); // update, not insert
        assert_eq!(cache.stats().evictions, 0);
        cache.insert(0, 3, 0, Some(3)); // now (0,2) is LRU
        assert_eq!(cache.get(0, 2, 0), None);
        assert_eq!(cache.get(0, 1, 0), Some(Some(10)));
    }

    #[test]
    fn capacity_is_respected_under_churn() {
        let cache = small(100, 8);
        for i in 0..10_000u32 {
            cache.insert(i, i + 1, 0, Some(i % 7));
        }
        assert!(cache.len() <= cache.capacity());
        let stats = cache.stats();
        assert!(stats.evictions > 0);
        assert_eq!(stats.entries, cache.len());
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = small(16, 2);
        cache.insert(1, 2, 0, Some(3));
        assert_eq!(cache.get(1, 2, 0), Some(Some(3)));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(1, 2, 0), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        // Usable after clear.
        cache.insert(1, 2, 0, Some(4));
        assert_eq!(cache.get(1, 2, 0), Some(Some(4)));
    }

    #[test]
    fn epoch_mismatch_is_a_stale_miss_in_both_directions() {
        let cache = small(16, 2);
        cache.insert(1, 2, 0, Some(3));
        // A new-epoch reader must not see the old answer…
        assert_eq!(cache.get(1, 2, 1), None);
        // …and an old-epoch reader must not see a newer one.
        cache.insert(1, 2, 1, Some(9));
        assert_eq!(cache.get(1, 2, 0), None);
        assert_eq!(cache.get(1, 2, 1), Some(Some(9)));
        let stats = cache.stats();
        assert_eq!(stats.stale, 2);
        assert_eq!(stats.misses, 2, "stale lookups count as misses");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn stale_probe_does_not_promote_the_dead_entry() {
        // Single shard, capacity 2, observable eviction order.
        let cache = small(2, 1);
        cache.insert(0, 1, 0, Some(1)); // LRU after the next insert
        cache.insert(0, 2, 0, Some(2));
        // A new-epoch probe of the dead (0,1) must not refresh it…
        assert_eq!(cache.get(0, 1, 1), None);
        // …so the next insert still evicts (0,1), not (0,2).
        cache.insert(0, 3, 0, Some(3));
        assert_eq!(cache.get(0, 2, 0), Some(Some(2)), "live entry survived");
        assert_eq!(cache.get(0, 1, 0), None, "dead entry was the one evicted");
    }

    #[test]
    fn reinsert_after_clear_under_old_epoch_stays_invisible() {
        // The mid-swap race: an in-flight old-epoch query re-inserts its
        // answer after the reload already cleared the cache.
        let cache = small(16, 2);
        cache.insert(4, 5, 0, Some(7));
        cache.clear(); // the swap's one clear
        cache.insert(4, 5, 0, Some(7)); // straggling old-epoch writer
        assert_eq!(cache.get(4, 5, 1), None, "stale re-insert must never hit epoch 1");
        cache.insert(4, 5, 1, Some(2));
        assert_eq!(cache.get(4, 5, 1), Some(Some(2)));
    }

    #[test]
    fn retag_carries_certified_pairs_and_strands_the_rest() {
        let cache = small(16, 2);
        cache.insert(1, 2, 3, Some(4));
        cache.insert(5, 6, 3, None); // unreachable, certified below
        cache.insert(7, 8, 3, Some(9)); // rejected by the predicate
        cache.insert(1, 9, 2, Some(1)); // older generation: untouched
        let kept = cache.retag(3, 4, |s, t, value| {
            assert!(s <= t, "keys are normalised");
            !(s == 7 && t == 8) && (value != Some(9))
        });
        assert_eq!(kept, 2);
        // Certified pairs hit under the new epoch with their old answers.
        assert_eq!(cache.get(1, 2, 4), Some(Some(4)));
        assert_eq!(cache.get(6, 5, 4), Some(None), "unreachable carries over");
        // The rejected pair is a stale miss under the new epoch…
        assert_eq!(cache.get(7, 8, 4), None);
        // …and the certified ones no longer answer the old epoch.
        assert_eq!(cache.get(1, 2, 3), None);
        // The unrelated generation was never considered.
        assert_eq!(cache.get(1, 9, 2), Some(Some(1)));
        assert_eq!(cache.get(1, 9, 4), None);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cache = small(100, 7);
        assert_eq!(cache.stats().shards, 8);
        let tiny = small(2, 64);
        assert!(tiny.stats().shards <= 2, "shards never exceed capacity");
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let cache = std::sync::Arc::new(small(1 << 12, 16));
        std::thread::scope(|scope| {
            for thread in 0..8u32 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..5_000u32 {
                        let s = (i * 7 + thread) % 500;
                        let t = (i * 13 + 1) % 500;
                        if let Some(hit) = cache.get(s, t, 0) {
                            // Any hit must carry the value every writer
                            // stores for this pair.
                            assert_eq!(hit, Some(s.min(t) % 11));
                        }
                        cache.insert(s, t, 0, Some(s.min(t) % 11));
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 5_000);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = small(0, 4);
    }
}
