//! The std-only TCP server: one accept loop, one handler thread per
//! connection, all sharing a [`QueryService`] and one [`BatchExecutor`].
//!
//! Shutdown is cooperative: a shutdown flag plus connection draining.
//! Sockets carry a short read timeout so handlers observe the flag between
//! requests, finish the request in flight, and close; the accept loop is
//! woken by a loopback "poke" connection, stops accepting, and joins every
//! handler before [`ServerHandle::join`] returns. Shutdown can come from a
//! client (`SHUTDOWN`), from [`ServerHandle::shutdown`], or from dropping
//! the handle.

use crate::batch::BatchExecutor;
use crate::metrics::ServeMetrics;
use crate::oracle_pool::QueryService;
use crate::protocol::{self, ProtocolError, Request};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads in the shared batch executor (0 = all cores).
    pub batch_threads: usize,
    /// Socket read timeout; the latency with which idle handlers notice
    /// shutdown.
    pub poll_interval: Duration,
    /// How many poll intervals an in-flight request body may still take
    /// once shutdown has begun, before the connection is dropped.
    pub drain_grace_polls: u32,
    /// Socket write timeout. Bounds how long a handler can block on a
    /// client that stopped reading (the connection is closed on expiry),
    /// which in turn bounds shutdown draining.
    pub write_timeout: Duration,
    /// Landmarks used when a `RELOAD` names only a graph file and the
    /// labelling must be rebuilt in-process (top-degree selection).
    pub reload_landmarks: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch_threads: 0,
            poll_interval: Duration::from_millis(50),
            drain_grace_polls: 40,
            write_timeout: Duration::from_secs(10),
            reload_landmarks: 20,
        }
    }
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    service: Arc<QueryService>,
    executor: BatchExecutor,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    config: ServerConfig,
}

impl Shared {
    /// Flips the shutdown flag and wakes the blocking accept call.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Poke the listener. A wildcard bind address (0.0.0.0 / ::) is
            // not connectable on every platform — substitute loopback.
            let mut poke = self.local_addr;
            if poke.ip().is_unspecified() {
                poke.set_ip(match poke.ip() {
                    std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                });
            }
            let _ = TcpStream::connect_timeout(&poke, self.config.poll_interval);
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `service`. Returns immediately; serving happens on background
    /// threads owned by the returned handle.
    pub fn bind(
        service: Arc<QueryService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let executor = BatchExecutor::new(Arc::clone(&service), config.batch_threads);
        let shared = Arc::new(Shared {
            service,
            executor,
            shutdown: AtomicBool::new(false),
            local_addr,
            config,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));

        Ok(ServerHandle { shared, accept_thread: Mutex::new(Some(accept_thread)) })
    }
}

/// Owns the serving threads; dropping it shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The service being served (for in-process stats).
    pub fn service(&self) -> &Arc<QueryService> {
        &self.shared.service
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Initiates graceful shutdown and waits for connections to drain.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Blocks until the server stops (via [`shutdown`](Self::shutdown) or a
    /// client `SHUTDOWN` request).
    pub fn join(&self) {
        let handle = self.accept_thread.lock().expect("accept handle poisoned").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutting_down() {
                    // The poke connection, or a client racing shutdown.
                    break;
                }
                let metrics = shared.service.metrics();
                ServeMetrics::bump(&metrics.connections);
                ServeMetrics::bump(&metrics.active_connections);
                let conn_shared = Arc::clone(&shared);
                handlers.push(std::thread::spawn(move || {
                    let _ = handle_connection(&conn_shared, stream);
                    ServeMetrics::drop_one(&conn_shared.service.metrics().active_connections);
                }));
                // Opportunistically reap finished handlers so a long-lived
                // server doesn't accumulate joinable threads.
                handlers.retain(|h| !h.is_finished());
            }
            Err(_) if shared.shutting_down() => break,
            Err(_) => {
                // Persistent accept failures (e.g. fd exhaustion under a
                // connection flood) must not busy-spin the accept thread.
                std::thread::sleep(shared.config.poll_interval);
            }
        }
    }
    // Drain: every handler finishes its in-flight request and exits.
    for handler in handlers {
        let _ = handler.join();
    }
}

/// Outcome of reading one line under the poll/shutdown regime.
enum LineRead {
    Line(String),
    /// EOF, shutdown-initiated close, drain grace expired, or a line beyond
    /// [`MAX_LINE_BYTES`].
    Closed,
}

/// Longest request line the server will buffer. The longest *valid* line
/// (`QUERY <u32> <u32>`) is under 32 bytes; anything near this cap is a
/// client streaming garbage, and buffering it unboundedly would let one
/// connection grow server memory without limit.
const MAX_LINE_BYTES: usize = 8 * 1024;

/// Reads one `\n`-terminated line, tolerating read timeouts. `relaxed`
/// allows waiting (grace-limited) during shutdown — used for request bodies
/// so an in-flight `BATCH` can complete; request boundaries close
/// immediately once shutdown begins and no partial line is pending.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    acc: &mut Vec<u8>,
    shared: &Shared,
    relaxed: bool,
) -> io::Result<LineRead> {
    let mut shutdown_polls = 0u32;
    loop {
        match reader.read_until(b'\n', acc) {
            Ok(0) => {
                // EOF. A trailing unterminated line still counts.
                if acc.is_empty() {
                    return Ok(LineRead::Closed);
                }
                return Ok(LineRead::Line(take_line(acc)));
            }
            Ok(_) if acc.len() > MAX_LINE_BYTES => return Ok(LineRead::Closed),
            Ok(_) if acc.last() == Some(&b'\n') => return Ok(LineRead::Line(take_line(acc))),
            Ok(_) => continue, // mid-line; keep accumulating
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if shared.shutting_down() {
                    let graceful = relaxed || !acc.is_empty();
                    shutdown_polls += 1;
                    if !graceful || shutdown_polls > shared.config.drain_grace_polls {
                        return Ok(LineRead::Closed);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

fn take_line(acc: &mut Vec<u8>) -> String {
    while matches!(acc.last(), Some(b'\n') | Some(b'\r')) {
        acc.pop();
    }
    let line = String::from_utf8_lossy(acc).into_owned();
    acc.clear();
    line
}

/// What the connection loop should do after sending a response.
enum ConnAction {
    /// Keep serving requests on this connection.
    Continue,
    /// Close this connection (unrecoverable framing, e.g. a `BATCH` header
    /// the server cannot honour while an undelimited body may be in
    /// flight).
    Close,
    /// Begin server-wide graceful shutdown.
    Shutdown,
}

fn handle_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    // Bound writes so a client that stops reading cannot pin this handler
    // (and thereby shutdown draining) forever.
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut acc = Vec::new();

    loop {
        let line = match read_line(&mut reader, &mut acc, shared, false)? {
            LineRead::Line(line) => line,
            LineRead::Closed => return Ok(()),
        };
        let (response, action) = respond(shared, &mut reader, &mut acc, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        match action {
            ConnAction::Continue => {}
            ConnAction::Close => return Ok(()),
            ConnAction::Shutdown => {
                shared.begin_shutdown();
                return Ok(());
            }
        }
        if shared.shutting_down() {
            // Drain: the request in flight was answered; now close.
            return Ok(());
        }
    }
}

/// Produces the response line for one request plus what to do with the
/// connection afterwards.
fn respond(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    acc: &mut Vec<u8>,
    line: &str,
) -> (String, ConnAction) {
    let metrics = shared.service.metrics();
    let request = match protocol::parse_request(line) {
        Ok(request) => request,
        Err(e) => {
            ServeMetrics::bump(&metrics.errors);
            // A rejected BATCH header (oversized k, unparseable k) may have
            // an undelimited body already in flight that the server cannot
            // skip — close so the request/response framing cannot desync.
            let action = if line.trim_start().starts_with("BATCH") {
                ConnAction::Close
            } else {
                ConnAction::Continue
            };
            return (protocol::format_error(e), action);
        }
    };
    match request {
        Request::Query(s, t) => match shared.service.distance(s, t) {
            Ok(d) => (protocol::format_query_response(d), ConnAction::Continue),
            Err(e) => {
                ServeMetrics::bump(&metrics.errors);
                (protocol::format_error(e), ConnAction::Continue)
            }
        },
        Request::Batch(k) => {
            let mut pairs = Vec::with_capacity(k);
            for i in 0..k {
                let pair_line = match read_line(reader, acc, shared, true) {
                    Ok(LineRead::Line(line)) => line,
                    Ok(LineRead::Closed) | Err(_) => {
                        ServeMetrics::bump(&metrics.errors);
                        return (
                            protocol::format_error(ProtocolError::BadArity {
                                command: "BATCH",
                                expected: "k pair lines",
                            }),
                            ConnAction::Close,
                        );
                    }
                };
                match protocol::parse_pair(&pair_line) {
                    Ok(pair) => pairs.push(pair),
                    Err(e) => {
                        ServeMetrics::bump(&metrics.errors);
                        // Consume the rest of the declared body so the next
                        // response still lines up with the next request
                        // (one ERR answers the whole batch).
                        for _ in i + 1..k {
                            match read_line(reader, acc, shared, true) {
                                Ok(LineRead::Line(_)) => {}
                                Ok(LineRead::Closed) | Err(_) => break,
                            }
                        }
                        return (protocol::format_error(e), ConnAction::Continue);
                    }
                }
            }
            match shared.executor.execute(&pairs) {
                Ok(distances) => {
                    (protocol::format_batch_response(&distances), ConnAction::Continue)
                }
                Err(e) => {
                    ServeMetrics::bump(&metrics.errors);
                    (protocol::format_error(e), ConnAction::Continue)
                }
            }
        }
        Request::Stats => {
            let snapshot = shared.service.metrics_snapshot();
            let cache = shared.service.cache_stats();
            (
                protocol::format_stats_response(&snapshot, &cache, shared.service.epoch()),
                ConnAction::Continue,
            )
        }
        Request::Ping => ("PONG".to_string(), ConnAction::Continue),
        Request::Epoch => {
            (protocol::format_epoch_response(shared.service.epoch()), ConnAction::Continue)
        }
        Request::Reload { graph, index } => {
            // Loading/rebuilding happens on this handler's thread; every
            // other connection keeps serving on the old epoch until the
            // final swap, which takes the write lock only for a pointer
            // exchange. On failure the old index keeps serving.
            match shared.service.reload_from_paths(
                &graph,
                index.as_deref(),
                shared.config.reload_landmarks,
            ) {
                Ok(epoch) => (protocol::format_reload_response(epoch), ConnAction::Continue),
                Err(e) => {
                    ServeMetrics::bump(&metrics.errors);
                    (protocol::format_error(e), ConnAction::Continue)
                }
            }
        }
        Request::Shutdown => ("BYE".to_string(), ConnAction::Shutdown),
    }
}
