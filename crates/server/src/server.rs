//! The std-only TCP server: one epoll reactor thread
//! drives every connection over nonblocking sockets, while query
//! execution runs on the shared [`BatchExecutor`] worker pool and comes
//! back through a completion queue. Thread count is fixed — reactor plus
//! workers — independent of how many connections are open.
//!
//! Shutdown is cooperative and poll-free: a shutdown flag plus one
//! eventfd write wake the reactor out of its epoll wait (no self-connect
//! "poke", no read-timeout polling). The reactor then closes the listening
//! port, lets every connection finish its in-flight requests and flush its
//! responses (bounded by [`ServerConfig::drain_grace`]), and exits.
//! Shutdown can come from a client (`SHUTDOWN`), from
//! [`ServerHandle::shutdown`], or from dropping the handle.

use crate::batch::BatchExecutor;
use crate::oracle_pool::QueryService;
use crate::reactor::{self, CompletionQueue};
use hcl_core::update::EdgeEdit;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads in the shared batch executor (0 = all cores).
    pub batch_threads: usize,
    /// Most connections the reactor will hold open at once; connections
    /// beyond this are answered with one `ERR` line and closed
    /// immediately (counted in `rejected_connections`).
    pub max_connections: usize,
    /// Close connections with no read/write progress for this long
    /// (counted in `timed_out_connections`). Zero disables the timeout.
    pub idle_timeout: Duration,
    /// Once shutdown begins, how long connections may take to finish
    /// in-flight requests and flush responses before being force-closed.
    pub drain_grace: Duration,
    /// Landmarks used when a `RELOAD` names only a graph file and the
    /// labelling must be rebuilt in-process (top-degree selection).
    pub reload_landmarks: usize,
    /// Most queries (single or batched pairs) allowed on the worker queue
    /// at once; submissions past this are shed with `ERR busy` instead of
    /// growing the queue without bound (0 = unbounded).
    pub max_pending: usize,
    /// Per-request deadline: work still queued this long after submission
    /// resolves `ERR deadline expired` instead of computing a stale
    /// answer. `None` disables it.
    pub request_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch_threads: 0,
            max_connections: 1024,
            idle_timeout: Duration::from_secs(600),
            drain_grace: Duration::from_secs(5),
            reload_landmarks: 20,
            max_pending: crate::batch::DEFAULT_MAX_PENDING,
            request_deadline: None,
        }
    }
}

/// State shared by the reactor, the worker pool, and the handle.
pub(crate) struct Shared {
    pub service: Arc<QueryService>,
    pub executor: BatchExecutor,
    pub shutdown: AtomicBool,
    pub local_addr: SocketAddr,
    pub config: ServerConfig,
    /// Worker → reactor completions; its eventfd is also the shutdown
    /// wakeup.
    pub queue: Arc<CompletionQueue>,
    /// Gate serialising `RELOAD`s and `UPDATE`s: index swaps are
    /// whole-graph work, so at most one runs at a time. Extra RELOADs are
    /// refused with an `ERR` (a pipelined flood must not fan out into
    /// concurrent full-index builds); extra UPDATEs park on
    /// [`pending_updates`](Self::pending_updates) instead and are applied
    /// one at a time, in arrival order, once the gate frees up.
    pub reload_busy: AtomicBool,
    /// Incremental edits waiting for the busy gate, in arrival order. The
    /// gate holder drains this before (and re-checks it after) releasing,
    /// so pipelined `UPDATE` lines all get applied without ever running
    /// two swaps concurrently.
    pub pending_updates: Mutex<VecDeque<UpdateJob>>,
}

/// One queued `UPDATE`, waiting for the busy gate: the edit plus the
/// response slot it must complete.
pub(crate) struct UpdateJob {
    /// The edge edit to apply.
    pub edit: EdgeEdit,
    /// Connection the response belongs to.
    pub conn: u64,
    /// Response slot within that connection.
    pub seq: u64,
}

impl Shared {
    /// Flips the shutdown flag and wakes the reactor's epoll wait.
    pub fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue.wake();
        }
    }

    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `service`. Returns immediately; serving happens on the reactor
    /// thread owned by the returned handle.
    pub fn bind(
        service: Arc<QueryService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let queue = Arc::new(CompletionQueue::new()?);
        service.set_request_deadline(config.request_deadline);
        let executor = BatchExecutor::with_queue_cap(
            Arc::clone(&service),
            config.batch_threads,
            config.max_pending,
        );
        let shared = Arc::new(Shared {
            service,
            executor,
            shutdown: AtomicBool::new(false),
            local_addr,
            config,
            queue,
            reload_busy: AtomicBool::new(false),
            pending_updates: Mutex::new(VecDeque::new()),
        });
        let reactor_thread = reactor::spawn(Arc::clone(&shared), listener)?;
        Ok(ServerHandle { shared, reactor_thread: Mutex::new(Some(reactor_thread)) })
    }
}

/// Owns the reactor thread; dropping it shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    reactor_thread: Mutex<Option<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The service being served (for in-process stats).
    pub fn service(&self) -> &Arc<QueryService> {
        &self.shared.service
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Initiates graceful shutdown and waits for connections to drain.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Blocks until the server stops (via [`shutdown`](Self::shutdown) or a
    /// client `SHUTDOWN` request).
    pub fn join(&self) {
        let handle = self.reactor_thread.lock().expect("reactor handle poisoned").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join();
    }
}
