//! [`ServingIndex`]: the backend a serving generation runs on — either the
//! heap-resident [`SharedOracle`] or `hcl-store`'s memory-mapped
//! [`PackedOracle`].
//!
//! The whole serving stack ([`QueryService`](crate::QueryService), the
//! batch executor, the reactor) is written against this enum, pinned per
//! generation inside an `OracleEpoch`, so a `RELOAD` can swap not just the
//! index contents but the *kind* of index: an in-memory build can be
//! replaced by a remap of a packed file and vice versa, with in-flight
//! queries finishing on whichever backend they pinned. Both variants run
//! the same generic query code from `hcl_core::storage`; the enum only
//! dispatches once per query, never inside the merge or the search.

use crate::oracle_pool::IndexSizes;
use hcl_core::{ContextPool, QueryContext, SharedOracle};
use hcl_graph::VertexId;
use hcl_store::PackedOracle;

/// One queryable index generation; see the module docs.
// Variant sizes differ because `PackedOracle` owns its reconstructed sparse
// view inline; the enum exists one-per-generation inside an `OracleEpoch`,
// never in bulk, so boxing would buy nothing and cost a deref per query.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ServingIndex {
    /// The classic heap-resident index (owned graph, labelling, and
    /// precomputed sparse view).
    Memory(SharedOracle),
    /// A zero-copy view over a packed `.hclx` file; reloads remap instead
    /// of rebuilding.
    Packed(PackedOracle),
}

impl ServingIndex {
    /// Number of vertices this generation can answer for.
    pub fn num_vertices(&self) -> usize {
        match self {
            ServingIndex::Memory(o) => o.num_vertices(),
            ServingIndex::Packed(o) => o.num_vertices(),
        }
    }

    /// The generation's persistent context pool.
    pub fn context_pool(&self) -> &ContextPool {
        match self {
            ServingIndex::Memory(o) => o.context_pool(),
            ServingIndex::Packed(o) => o.context_pool(),
        }
    }

    /// Exact distance using a caller-held context (worker-loop path).
    #[inline]
    pub fn distance_with(&self, ctx: &mut QueryContext, s: VertexId, t: VertexId) -> Option<u32> {
        match self {
            ServingIndex::Memory(o) => o.distance_with(ctx, s, t),
            ServingIndex::Packed(o) => o.distance_with(ctx, s, t),
        }
    }

    /// [`distance_with`](Self::distance_with) plus per-phase wall-clock
    /// accounting, feeding the cumulative merge/search `METRICS` counters.
    #[inline]
    pub fn distance_with_timed(
        &self,
        ctx: &mut QueryContext,
        s: VertexId,
        t: VertexId,
    ) -> (Option<u32>, hcl_core::QueryPhases) {
        match self {
            ServingIndex::Memory(o) => o.distance_with_timed(ctx, s, t),
            ServingIndex::Packed(o) => o.distance_with_timed(ctx, s, t),
        }
    }

    /// Exact distance using a pooled context.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Option<u32> {
        match self {
            ServingIndex::Memory(o) => o.distance(s, t),
            ServingIndex::Packed(o) => o.distance(s, t),
        }
    }

    /// Answers a batch across scoped workers (0 = all cores), preserving
    /// input order.
    pub fn batch_distances(
        &self,
        pairs: &[(VertexId, VertexId)],
        num_threads: usize,
    ) -> Vec<Option<u32>> {
        match self {
            ServingIndex::Memory(o) => o.batch_distances(pairs, num_threads),
            ServingIndex::Packed(o) => o.batch_distances(pairs, num_threads),
        }
    }

    /// The in-memory oracle, when this generation is one (tests and
    /// callers needing the graph or sparse view directly).
    pub fn as_memory(&self) -> Option<&SharedOracle> {
        match self {
            ServingIndex::Memory(o) => Some(o),
            ServingIndex::Packed(_) => None,
        }
    }

    /// The packed oracle, when this generation serves from a mapped file.
    pub fn as_packed(&self) -> Option<&PackedOracle> {
        match self {
            ServingIndex::Memory(_) => None,
            ServingIndex::Packed(o) => Some(o),
        }
    }

    /// Sizes of this generation as reported by `STATS`. `store_bytes` is 0
    /// for in-memory generations (nothing on disk backs them);
    /// `plain_index_bytes` is what the index would occupy in the plain
    /// `HCLIDX01` serialisation, the baseline the packed compression ratio
    /// is measured against.
    pub fn sizes(&self) -> IndexSizes {
        match self {
            ServingIndex::Memory(o) => {
                let view = o.sparse_view();
                let labels = o.labelling().labels();
                IndexSizes {
                    index_bytes: o.labelling().index_bytes(),
                    sparse_bytes: view.memory_bytes(),
                    sparse_edges: view.num_edges(),
                    store_bytes: 0,
                    plain_index_bytes: hcl_store::plain_index_bytes(
                        labels.num_vertices(),
                        o.labelling().num_landmarks(),
                        labels.total_entries(),
                    ),
                    rank_lane_bytes: labels.rank_lane_bytes(),
                    dist_lane_bytes: labels.dist_lane_bytes(),
                }
            }
            ServingIndex::Packed(o) => {
                let view = o.view();
                // The packed labels stay delta-varint on disk; the lanes
                // are what each entry decodes into (one u16 per lane).
                let lane = view.total_label_entries() as usize * std::mem::size_of::<u16>();
                IndexSizes {
                    index_bytes: view.packed_index_bytes(),
                    sparse_bytes: view.sparse_bytes(),
                    sparse_edges: view.sparse_edges(),
                    store_bytes: view.store_bytes(),
                    plain_index_bytes: view.plain_index_bytes(),
                    rank_lane_bytes: lane,
                    dist_lane_bytes: lane,
                }
            }
        }
    }
}

impl From<SharedOracle> for ServingIndex {
    fn from(o: SharedOracle) -> ServingIndex {
        ServingIndex::Memory(o)
    }
}

impl From<PackedOracle> for ServingIndex {
    fn from(o: PackedOracle) -> ServingIndex {
        ServingIndex::Packed(o)
    }
}
