//! A small blocking client for the [`protocol`] module's wire format —
//! used by the `hcl client` CLI command, the loopback integration tests,
//! and the serving benchmark.

use crate::protocol::{self, ResponseError};
use hcl_graph::VertexId;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server closed the connection mid-exchange.
    Disconnected,
    /// The server replied with an error or an unparseable line.
    Response(ResponseError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Response(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ResponseError> for ClientError {
    fn from(e: ResponseError) -> Self {
        ClientError::Response(e)
    }
}

/// One blocking connection speaking the line protocol.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serving process.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: stream })
    }

    fn send(&mut self, request: &str) -> Result<(), ClientError> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn receive(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Disconnected);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// One exact distance (`None` = unreachable). A router may answer
    /// degraded (`DIST~`, an upper bound); use
    /// [`query_tagged`](Self::query_tagged) to observe the flag.
    pub fn query(&mut self, s: VertexId, t: VertexId) -> Result<Option<u32>, ClientError> {
        self.send(&format!("QUERY {s} {t}"))?;
        Ok(protocol::parse_query_response(&self.receive()?)?)
    }

    /// One distance plus whether the answer was degraded (`DIST~`: the
    /// landmark upper bound from a surviving replica, not guaranteed
    /// exact — but never an under-report).
    pub fn query_tagged(
        &mut self,
        s: VertexId,
        t: VertexId,
    ) -> Result<(Option<u32>, bool), ClientError> {
        self.send(&format!("QUERY {s} {t}"))?;
        Ok(protocol::parse_query_response_tagged(&self.receive()?)?)
    }

    /// Pipelines one `QUERY` per pair — every request is written before
    /// any response is read — and returns the distances in input order.
    /// Exercises the server's response-ordering guarantee: responses
    /// always come back in request order even when the underlying queries
    /// complete out of order on the worker pool.
    pub fn pipelined_queries(
        &mut self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<Vec<Option<u32>>, ClientError> {
        let mut request = String::new();
        for &(s, t) in pairs {
            request.push_str(&format!("QUERY {s} {t}\n"));
        }
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()?;
        pairs.iter().map(|_| Ok(protocol::parse_query_response(&self.receive()?)?)).collect()
    }

    /// A batch of distances, in input order.
    pub fn batch(
        &mut self,
        pairs: &[(VertexId, VertexId)],
    ) -> Result<Vec<Option<u32>>, ClientError> {
        let mut request = format!("BATCH {}", pairs.len());
        for &(s, t) in pairs {
            request.push('\n');
            request.push_str(&format!("{s} {t}"));
        }
        self.send(&request)?;
        Ok(protocol::parse_batch_response(&self.receive()?, pairs.len())?)
    }

    /// The raw `STATS` body (`key=value` pairs separated by spaces).
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.send("STATS")?;
        let line = self.receive()?;
        match line.strip_prefix("STATS ") {
            Some(body) => Ok(body.to_string()),
            None => Err(ClientError::Response(ResponseError::Malformed(line))),
        }
    }

    /// The raw single-line JSON body of a `METRICS` response.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send("METRICS")?;
        Ok(protocol::parse_metrics_response(&self.receive()?)?)
    }

    /// The server's current index epoch.
    pub fn epoch(&mut self) -> Result<u64, ClientError> {
        self.send("EPOCH")?;
        Ok(protocol::parse_epoch_response(&self.receive()?)?)
    }

    /// Asks the server to hot-swap its index from `graph` (and optionally a
    /// prebuilt `index`) — **server-side** paths without spaces. Returns
    /// the new epoch. Blocks until the server loaded and swapped (or
    /// refused); other connections keep being served meanwhile.
    pub fn reload(&mut self, graph: &str, index: Option<&str>) -> Result<u64, ClientError> {
        let request = match index {
            Some(index) => format!("RELOAD {graph} {index}"),
            None => format!("RELOAD {graph}"),
        };
        self.send(&request)?;
        Ok(protocol::parse_reload_response(&self.receive()?)?)
    }

    /// Applies one incremental edge edit (`true` = insert, `false` =
    /// delete) to the server's in-memory index. Returns the new epoch and
    /// the number of vertices whose landmark distances changed. Blocks
    /// until the patched index is published (or the edit was refused);
    /// pipelined updates on one connection are applied in order.
    pub fn update(
        &mut self,
        add: bool,
        u: VertexId,
        v: VertexId,
    ) -> Result<(u64, u64), ClientError> {
        let op = if add { "ADD" } else { "DEL" };
        self.send(&format!("UPDATE {op} {u} {v}"))?;
        Ok(protocol::parse_update_response(&self.receive()?)?)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send("PING")?;
        let line = self.receive()?;
        if line == "PONG" {
            Ok(())
        } else {
            Err(ClientError::Response(ResponseError::Malformed(line)))
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.send("SHUTDOWN")?;
        let line = self.receive()?;
        if line == "BYE" {
            Ok(())
        } else {
            Err(ClientError::Response(ResponseError::Malformed(line)))
        }
    }

    /// Sends a raw request line and returns the raw response line
    /// (single-line responses only — not `BATCH`).
    pub fn raw(&mut self, request: &str) -> Result<String, ClientError> {
        self.send(request)?;
        self.receive()
    }
}
