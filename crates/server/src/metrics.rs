//! Serving counters, all lock-free atomics so every connection handler and
//! batch worker can bump them without coordination.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing one serving process. Incremented with
/// relaxed ordering — the counters are statistics, not synchronisation.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Single `QUERY` requests answered.
    pub queries: AtomicU64,
    /// `BATCH` requests answered.
    pub batch_requests: AtomicU64,
    /// Pairs answered inside `BATCH` requests.
    pub batch_queries: AtomicU64,
    /// Connections accepted over the lifetime of the server.
    pub connections: AtomicU64,
    /// Connections currently open.
    pub active_connections: AtomicU64,
    /// Connections refused because `max_connections` was reached.
    pub rejected_connections: AtomicU64,
    /// Connections closed by the server's idle timeout.
    pub timed_out_connections: AtomicU64,
    /// Requests rejected with a protocol, range, or reload error.
    pub errors: AtomicU64,
    /// Requests shed (`ERR busy`) because the worker queue was saturated.
    pub shed_requests: AtomicU64,
    /// Requests resolved `ERR deadline expired` because they outlived the
    /// per-request deadline on the queue.
    pub deadline_expired: AtomicU64,
    /// Successful hot index reloads (the current epoch equals this count
    /// while every reload succeeds).
    pub reloads: AtomicU64,
    /// Incremental `UPDATE` edits applied (each publishes a new epoch, so
    /// the current epoch equals `reloads + updates_applied` while every
    /// swap succeeds).
    pub updates_applied: AtomicU64,
    /// Cumulative vertices whose landmark distances changed across all
    /// applied updates (the work an `O(affected)` update actually did;
    /// divide by `updates_applied` for the mean edit footprint).
    pub update_affected_vertices: AtomicU64,
    /// Cumulative nanoseconds single `QUERY` cache misses spent in the
    /// label merge (Equation 4 upper bound).
    pub merge_ns: AtomicU64,
    /// Cumulative nanoseconds single `QUERY` cache misses spent in the
    /// bounded bidirectional search.
    pub search_ns: AtomicU64,
    /// Single `QUERY` cache misses whose bounded search actually ran (the
    /// rest were answered by the label merge alone).
    pub searched_queries: AtomicU64,
}

impl ServeMetrics {
    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a counter by one (used for gauges such as
    /// [`active_connections`](Self::active_connections)).
    pub fn drop_one(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            batch_requests: self.batch_requests.load(Ordering::Relaxed),
            batch_queries: self.batch_queries.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            timed_out_connections: self.timed_out_connections.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed_requests: self.shed_requests.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            update_affected_vertices: self.update_affected_vertices.load(Ordering::Relaxed),
            merge_ns: self.merge_ns.load(Ordering::Relaxed),
            search_ns: self.search_ns.load(Ordering::Relaxed),
            searched_queries: self.searched_queries.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`ServeMetrics`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Single `QUERY` requests answered.
    pub queries: u64,
    /// `BATCH` requests answered.
    pub batch_requests: u64,
    /// Pairs answered inside `BATCH` requests.
    pub batch_queries: u64,
    /// Connections accepted over the lifetime of the server.
    pub connections: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// Connections refused because `max_connections` was reached.
    pub rejected_connections: u64,
    /// Connections closed by the server's idle timeout.
    pub timed_out_connections: u64,
    /// Requests rejected with a protocol, range, or reload error.
    pub errors: u64,
    /// Requests shed (`ERR busy`) at queue saturation.
    pub shed_requests: u64,
    /// Requests resolved `ERR deadline expired`.
    pub deadline_expired: u64,
    /// Successful hot index reloads.
    pub reloads: u64,
    /// Incremental `UPDATE` edits applied.
    pub updates_applied: u64,
    /// Cumulative affected vertices across all applied updates.
    pub update_affected_vertices: u64,
    /// Cumulative label-merge nanoseconds across single-`QUERY` misses.
    pub merge_ns: u64,
    /// Cumulative bounded-search nanoseconds across single-`QUERY` misses.
    pub search_ns: u64,
    /// Single-`QUERY` misses whose bounded search ran.
    pub searched_queries: u64,
}

impl MetricsSnapshot {
    /// Total distances served, single and batched.
    pub fn total_distances(&self) -> u64 {
        self.queries + self.batch_queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServeMetrics::default();
        ServeMetrics::bump(&m.queries);
        ServeMetrics::add(&m.batch_queries, 41);
        ServeMetrics::bump(&m.active_connections);
        ServeMetrics::bump(&m.active_connections);
        ServeMetrics::drop_one(&m.active_connections);
        let snap = m.snapshot();
        assert_eq!(snap.queries, 1);
        assert_eq!(snap.batch_queries, 41);
        assert_eq!(snap.active_connections, 1);
        assert_eq!(snap.total_distances(), 42);
    }

    #[test]
    fn concurrent_bumps_are_not_lost() {
        let m = ServeMetrics::default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        ServeMetrics::bump(&m.queries);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().queries, 80_000);
    }
}
