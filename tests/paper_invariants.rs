//! Property-based tests of the paper's theorems on arbitrary graphs:
//!
//! * Theorem 3.9 — the constructed labelling satisfies the highway cover
//!   property (every `r`-constrained distance is recoverable from two
//!   labels + the highway).
//! * Lemma 3.11 — order independence: any permutation of the landmark set
//!   yields the same labels.
//! * Theorem 3.12 / Lemma 3.7 — minimality: an entry `(r, v)` exists iff no
//!   other landmark lies on any shortest `r–v` path (checked by brute
//!   force), so no smaller highway cover labelling exists.
//! * Corollary 3.14 — `size(HL) <= size(PLL)` for the same landmark set,
//!   under every landmark order.
//! * Lemma 4.4 / Theorem 4.6 — the query upper bound is admissible and the
//!   full framework returns exact distances.

use hcl::prelude::*;
use hcl_baselines::{PllConfig, PllIndex};
use hcl_core::testing::all_pairs as all_pairs_bfs;
use hcl_graph::INF;
use proptest::prelude::*;

/// Random graph + landmark set strategy: up to 40 vertices, random edges,
/// 0–6 distinct landmarks.
fn graph_and_landmarks() -> impl Strategy<Value = (CsrGraph, Vec<u32>)> {
    (2usize..40)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..120);
            let landmark_sel = proptest::collection::vec(0..n as u32, 0..6);
            (Just(n), edges, landmark_sel)
        })
        .prop_map(|(n, edges, landmark_sel)| {
            let g = CsrGraph::from_edges(n, &edges);
            let mut landmarks = landmark_sel;
            landmarks.sort_unstable();
            landmarks.dedup();
            (g, landmarks)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn labelling_is_minimal_and_exact((g, landmarks) in graph_and_landmarks()) {
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let dist = all_pairs_bfs(&g);
        let highway = hcl.highway();

        // Highway distances are exact.
        for (i, &a) in landmarks.iter().enumerate() {
            for (j, &b) in landmarks.iter().enumerate() {
                prop_assert_eq!(
                    highway.distance(i as u32, j as u32),
                    dist[a as usize][b as usize]
                );
            }
        }

        for v in g.vertices() {
            if highway.is_landmark(v) {
                prop_assert!(hcl.labels().label(v).is_empty());
                continue;
            }
            for (rank, &r) in landmarks.iter().enumerate() {
                let d_rv = dist[r as usize][v as usize];
                // Lemma 3.7: entry iff no other landmark on any shortest path.
                let must_have = d_rv != INF
                    && !landmarks.iter().any(|&w| {
                        w != r && w != v
                            && dist[r as usize][w as usize] != INF
                            && dist[w as usize][v as usize] != INF
                            && dist[r as usize][w as usize] + dist[w as usize][v as usize] == d_rv
                    });
                let entry = hcl
                    .labels()
                    .label(v)
                    .iter()
                    .find(|e| e.landmark == rank as u16);
                prop_assert_eq!(entry.is_some(), must_have, "landmark {} vertex {}", r, v);
                if let Some(e) = entry {
                    prop_assert_eq!(e.dist as u32, d_rv);
                }
                // Theorem 3.9 / Corollary 3.8 (highway cover property):
                // the r-constrained distance is recoverable from L(v) + H.
                if d_rv != INF {
                    prop_assert_eq!(hcl.bound_from_landmark(rank as u32, v), d_rv);
                }
            }
        }
    }

    #[test]
    fn order_independence((g, landmarks) in graph_and_landmarks()) {
        let (a, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let mut reversed = landmarks.clone();
        reversed.reverse();
        let (b, _) = HighwayCoverLabelling::build(&g, &reversed).unwrap();
        // Entries are identical after resolving ranks to vertices.
        for v in g.vertices() {
            let mut ea: Vec<(u32, u16)> = a.labels().label(v).iter()
                .map(|e| (a.highway().landmark(e.landmark as u32), e.dist)).collect();
            let mut eb: Vec<(u32, u16)> = b.labels().label(v).iter()
                .map(|e| (b.highway().landmark(e.landmark as u32), e.dist)).collect();
            ea.sort_unstable();
            eb.sort_unstable();
            prop_assert_eq!(ea, eb);
        }
    }

    #[test]
    fn parallel_equals_sequential((g, landmarks) in graph_and_landmarks()) {
        let (seq, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let (par, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 3).unwrap();
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn hl_never_larger_than_pll_corollary_3_14((g, landmarks) in graph_and_landmarks()) {
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let no_bp = PllConfig { num_bp_roots: 0, bp_neighbors: 0 };
        // Against both landmark orders; PLL labels include the roots' own
        // self-entries, which the highway cover labelling does not need —
        // exclude them for a conservative comparison.
        for order in [landmarks.clone(), landmarks.iter().rev().copied().collect()] {
            let (pll, _) = PllIndex::build_with_order(&g, &order, no_bp).unwrap();
            // Every PLL root labels itself once; those entries have no HL
            // counterpart (landmark distances live in the highway).
            let pll_non_root = pll.total_entries() - order.len();
            prop_assert!(
                hcl.labels().total_entries() <= pll_non_root,
                "HL {} vs PLL {} (non-root {})",
                hcl.labels().total_entries(), pll.total_entries(), pll_non_root
            );
        }
    }

    #[test]
    fn queries_are_exact((g, landmarks) in graph_and_landmarks()) {
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let dist = all_pairs_bfs(&g);
        let mut oracle = HlOracle::new(&g, hcl);
        for s in g.vertices() {
            for t in g.vertices() {
                let expect = (dist[s as usize][t as usize] != INF)
                    .then_some(dist[s as usize][t as usize]);
                // Lemma 4.4: the bound is admissible.
                if s != t {
                    let ub = oracle.upper_bound(s, t);
                    if let Some(d) = expect {
                        prop_assert!(ub >= d);
                    }
                }
                // Theorem 4.6: the framework is exact.
                prop_assert_eq!(oracle.query(s, t), expect, "{}->{}", s, t);
            }
        }
    }

    #[test]
    fn serialization_roundtrip((g, landmarks) in graph_and_landmarks()) {
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let mut buf = Vec::new();
        hcl::core::io::write_labelling(&hcl, &mut buf).unwrap();
        let back = hcl::core::io::read_labelling(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(hcl, back);
    }

    #[test]
    fn corrupted_labelling_never_panics(
        (g, landmarks) in graph_and_landmarks(),
        cut in 0usize..96,
        flip in 0usize..96,
    ) {
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let mut buf = Vec::new();
        hcl::core::io::write_labelling(&hcl, &mut buf).unwrap();
        let cut = cut.min(buf.len());
        buf.truncate(buf.len() - cut);
        if !buf.is_empty() {
            let idx = flip % buf.len();
            buf[idx] ^= 0xA5;
        }
        // Must parse or fail cleanly — never panic or make absurd allocations.
        let _ = hcl::core::io::read_labelling(std::io::Cursor::new(buf));
    }
}

/// Non-proptest spot check: Corollary 3.14 with strict inequality on the
/// paper's own example (13 < 25 < 30).
#[test]
fn corollary_3_14_on_paper_example() {
    let g = hcl::core::fixture::paper_graph();
    let landmarks = hcl::core::fixture::paper_landmarks();
    let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
    assert_eq!(hcl.labels().total_entries(), 13);
    let no_bp = PllConfig { num_bp_roots: 0, bp_neighbors: 0 };
    let (pll, _) = PllIndex::build_with_order(&g, &landmarks, no_bp).unwrap();
    assert!(hcl.labels().total_entries() < pll.total_entries());
}
