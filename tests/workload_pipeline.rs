//! End-to-end pipeline tests: dataset generation → labelling → persistence
//! → querying, the way the CLI and the benchmark harness drive the library.

use hcl::prelude::*;
use hcl::workloads::queries::{sample_pairs, DistanceDistribution};

#[test]
fn full_pipeline_on_standin_dataset() {
    let spec = hcl::workloads::datasets::dataset_by_name("Flickr").unwrap();
    let g = spec.generate(0.1);
    assert!(hcl::graph::connectivity::is_connected(&g));

    // Build, persist, reload.
    let landmarks = LandmarkStrategy::TopDegree(20).select(&g);
    let (labelling, stats) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
    assert!(stats.labels_added > 0);
    let dir = std::env::temp_dir().join("hcl_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let graph_path = dir.join("g.hclg");
    let index_path = dir.join("g.hcl");
    hcl::graph::io::save_binary(&g, &graph_path).unwrap();
    hcl::core::io::save_labelling(&labelling, &index_path).unwrap();

    let g2 = hcl::graph::io::load_binary(&graph_path).unwrap();
    let labelling2 = hcl::core::io::load_labelling(&index_path).unwrap();
    assert_eq!(g, g2);
    assert_eq!(labelling, labelling2);

    // Queries on the reloaded index match Bi-BFS ground truth.
    let mut oracle = HlOracle::new(&g2, labelling2);
    let mut reference = BiBfsOracle::new(&g);
    let pairs = sample_pairs(g.num_vertices(), 300, 5);
    for &(s, t) in &pairs {
        assert_eq!(oracle.distance(s, t), reference.distance(s, t), "{s}->{t}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distance_distribution_matches_between_oracle_and_bibfs() {
    // Figure 6 is computed through the HL oracle in the harness; verify
    // that gives the identical distribution to Bi-BFS.
    let spec = hcl::workloads::datasets::dataset_by_name("Skitter").unwrap();
    let g = spec.generate(0.1);
    let pairs = sample_pairs(g.num_vertices(), 500, 9);
    let reference = DistanceDistribution::measure(&g, &pairs);

    let landmarks = LandmarkStrategy::TopDegree(20).select(&g);
    let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
    let mut oracle = HlOracle::new(&g, labelling);
    let mut via_oracle = DistanceDistribution::default();
    for &(s, t) in &pairs {
        via_oracle.record(oracle.query(s, t));
    }
    assert_eq!(reference, via_oracle);
    // Small-world sanity (Figure 6's shape): short average distances.
    assert!(via_oracle.mean() < 10.0);
}

#[test]
fn every_standin_dataset_generates_and_answers_queries() {
    // Tiny scale so all 12 datasets stay fast; exercises both generator
    // families end to end.
    for spec in hcl::workloads::all_datasets() {
        let g = spec.generate(0.02);
        assert!(g.num_vertices() >= 16, "{}", spec.name);
        let landmarks = LandmarkStrategy::TopDegree(10).select(&g);
        let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
        let mut oracle = HlOracle::new(&g, labelling);
        let mut reference = BiBfsOracle::new(&g);
        for &(s, t) in sample_pairs(g.num_vertices(), 60, 3).iter() {
            assert_eq!(oracle.distance(s, t), reference.distance(s, t), "{} {s}->{t}", spec.name);
        }
    }
}

#[test]
fn landmark_strategies_all_produce_exact_oracles() {
    let g = hcl::graph::generate::barabasi_albert(400, 4, 21);
    let mut reference = BiBfsOracle::new(&g);
    for strategy in [
        LandmarkStrategy::TopDegree(15),
        LandmarkStrategy::TopTwoHopDegree(15),
        LandmarkStrategy::Random { k: 15, seed: 2 },
    ] {
        let landmarks = strategy.select(&g);
        let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let mut oracle = HlOracle::new(&g, labelling);
        for &(s, t) in sample_pairs(400, 200, 8).iter() {
            assert_eq!(
                oracle.distance(s, t),
                reference.distance(s, t),
                "{} {s}->{t}",
                strategy.name()
            );
        }
    }
}

#[test]
fn coverage_increases_with_landmarks() {
    // The monotonicity behind Figure 9: top-degree landmark sets are
    // nested, so covered pairs can only grow with k.
    let spec = hcl::workloads::datasets::dataset_by_name("LiveJournal").unwrap();
    let g = spec.generate(0.1);
    let pairs = sample_pairs(g.num_vertices(), 400, 31);
    let mut last = 0usize;
    for k in [10usize, 20, 30, 40, 50] {
        let landmarks = LandmarkStrategy::TopDegree(k).select(&g);
        let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
        let mut oracle = HlOracle::new(&g, labelling);
        let covered = pairs.iter().filter(|&&(s, t)| oracle.pair_covered(s, t)).count();
        assert!(covered >= last, "coverage dropped from {last} to {covered} at k={k}");
        last = covered;
    }
}
