//! Integration: every exact method in the workspace must return identical
//! distances on every dataset family the evaluation uses — HL (sequential
//! and parallel builds), FD, PLL (with and without bit-parallel roots),
//! IS-L, Bi-BFS and plain BFS.

use hcl::prelude::*;
use hcl::workloads::queries::sample_pairs;
use hcl_baselines::pll::PllOracle;

fn oracles_agree(g: &CsrGraph, queries: usize, seed: u64) {
    let pairs = sample_pairs(g.num_vertices(), queries, seed);

    let landmarks = LandmarkStrategy::TopDegree(12).select(g);
    let (seq, _) = HighwayCoverLabelling::build(g, &landmarks).unwrap();
    let (par, _) = HighwayCoverLabelling::build_parallel(g, &landmarks, 4).unwrap();
    assert_eq!(seq, par, "parallel and sequential labellings must be identical");
    let mut hl = HlOracle::new(g, seq);

    let (fd_index, _) = FdIndex::build(g, FdConfig::default()).unwrap();
    let mut fd = FdOracle::new(g, fd_index);

    let (pll_plain, _) =
        PllIndex::build(g, PllConfig { num_bp_roots: 0, bp_neighbors: 0 }).unwrap();
    let mut pll0 = PllOracle::new(pll_plain);
    let (pll_bp, _) = PllIndex::build(g, PllConfig { num_bp_roots: 8, bp_neighbors: 64 }).unwrap();
    let mut pll8 = PllOracle::new(pll_bp);

    let (isl_index, _) = IslIndex::build(g, IslConfig::default()).unwrap();
    let mut isl = IslOracle::new(isl_index);

    let mut bibfs = BiBfsOracle::new(g);
    let mut bfs = BfsOracle::new(g);

    for &(s, t) in &pairs {
        let expect = bfs.distance(s, t);
        assert_eq!(hl.distance(s, t), expect, "HL {s}->{t}");
        assert_eq!(fd.distance(s, t), expect, "FD {s}->{t}");
        assert_eq!(pll0.distance(s, t), expect, "PLL {s}->{t}");
        assert_eq!(pll8.distance(s, t), expect, "PLL+BP {s}->{t}");
        assert_eq!(isl.distance(s, t), expect, "IS-L {s}->{t}");
        assert_eq!(bibfs.distance(s, t), expect, "Bi-BFS {s}->{t}");
    }
}

#[test]
fn agreement_on_scale_free_network() {
    let g = hcl::graph::generate::barabasi_albert(600, 4, 1);
    oracles_agree(&g, 400, 10);
}

#[test]
fn agreement_on_web_copying_network() {
    let g = hcl::graph::generate::web_copying(700, 5, 0.25, 2);
    let g = hcl::graph::connectivity::largest_connected_component(&g).0;
    oracles_agree(&g, 400, 11);
}

#[test]
fn agreement_on_erdos_renyi() {
    let g = hcl::graph::generate::erdos_renyi(500, 1_100, 3);
    oracles_agree(&g, 400, 12);
}

#[test]
fn agreement_on_small_world() {
    let g = hcl::graph::generate::watts_strogatz(400, 6, 0.1, 4);
    oracles_agree(&g, 400, 13);
}

#[test]
fn agreement_on_sparse_tree_like_graph() {
    let g = hcl::graph::generate::random_tree(300, 5);
    oracles_agree(&g, 300, 14);
}

#[test]
fn agreement_on_grid() {
    let g = hcl::graph::generate::grid(15, 18);
    oracles_agree(&g, 300, 15);
}

#[test]
fn agreement_on_dataset_standins() {
    // Tiny-scale versions of three Table 1 stand-ins, one per family.
    for name in ["Skitter", "LiveJournal", "Indochina"] {
        let spec = hcl::workloads::datasets::dataset_by_name(name).unwrap();
        let g = spec.generate(0.05);
        oracles_agree(&g, 250, 16);
    }
}

#[test]
fn agreement_on_disconnected_components() {
    // Two BA components glued into one vertex set, plus isolated vertices.
    let a = hcl::graph::generate::barabasi_albert(150, 3, 7);
    let b = hcl::graph::generate::barabasi_albert(120, 3, 8);
    let mut builder = GraphBuilder::new(150 + 120 + 5);
    for (u, v) in a.edges() {
        builder.add_edge(u, v).unwrap();
    }
    for (u, v) in b.edges() {
        builder.add_edge(u + 150, v + 150).unwrap();
    }
    let g = builder.build();
    oracles_agree(&g, 400, 17);
}
