//! # hcl — Highway Cover Labelling for exact distance queries
//!
//! A Rust implementation of *"A Highly Scalable Labelling Approach for Exact
//! Distance Queries in Complex Networks"* (Farhan, Wang, Lin, McKay —
//! EDBT 2019), together with every substrate and baseline the paper's
//! evaluation depends on.
//!
//! This crate is a facade: it re-exports the workspace members so
//! applications can depend on a single crate.
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`graph`] | CSR graphs, generators, traversal, connectivity, I/O |
//! | [`core`] | the highway cover labelling (HL / HL-P) and query framework, plus the thread-safe [`SharedOracle`](core::SharedOracle) |
//! | [`baselines`] | PLL (bit-parallel), FD, IS-Label, online searches |
//! | [`workloads`] | the 12 synthetic dataset stand-ins and query workloads |
//! | [`server`] | concurrent query serving: shared oracle pool, sharded LRU cache, order-preserving batch executor, TCP line protocol + client |
//!
//! ## Example
//!
//! ```
//! use hcl::prelude::*;
//!
//! // A scale-free network, scaled down for the doc test.
//! let g = hcl::graph::generate::barabasi_albert(5_000, 8, 42);
//!
//! // Pick 20 top-degree landmarks (the paper's default) and build the
//! // labelling in parallel.
//! let landmarks = LandmarkStrategy::TopDegree(20).select(&g);
//! let (labelling, stats) =
//!     HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
//! assert!(stats.labels_added > 0);
//!
//! // Query exact distances.
//! let mut oracle = HlOracle::new(&g, labelling);
//! assert!(oracle.distance(17, 4_321).unwrap() <= 10);
//! ```

pub use hcl_baselines as baselines;
pub use hcl_core as core;
pub use hcl_graph as graph;
pub use hcl_server as server;
pub use hcl_workloads as workloads;

/// The types most applications need.
pub mod prelude {
    pub use hcl_baselines::{
        BfsOracle, BiBfsOracle, DijkstraOracle, FdConfig, FdIndex, FdOracle, IslConfig, IslIndex,
        IslOracle, PllConfig, PllIndex,
    };
    pub use hcl_core::landmarks::LandmarkStrategy;
    pub use hcl_core::{
        BuildStats, Highway, HighwayCoverLabelling, HighwayLabels, HlOracle, SharedOracle,
    };
    pub use hcl_graph::{CsrGraph, DistanceOracle, GraphBuilder, SearchSpace, VertexId};
    pub use hcl_server::{BatchExecutor, QueryService};
}
