//! Quickstart: build a highway cover labelling and answer distance queries.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hcl::prelude::*;

fn main() {
    // A synthetic social network: 50k vertices, preferential attachment.
    println!("generating a 50k-vertex scale-free network …");
    let g = hcl::graph::generate::barabasi_albert(50_000, 8, 42);
    println!("  n = {}, m = {}, max degree = {}", g.num_vertices(), g.num_edges(), g.max_degree());

    // Step 1: pick landmarks. The paper uses the 20 highest-degree vertices.
    let landmarks = LandmarkStrategy::TopDegree(20).select(&g);

    // Step 2: build the labelling (HL-P: one pruned BFS per landmark,
    // landmarks processed in parallel).
    let (labelling, stats) =
        HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).expect("build labelling");
    println!(
        "built labelling in {:?}: {} entries ({:.2} per vertex), index {} bytes",
        stats.duration,
        labelling.labels().total_entries(),
        labelling.labels().avg_label_size(),
        labelling.index_bytes(),
    );

    // Step 3: query. The oracle owns reusable search buffers, so queries
    // allocate nothing.
    let mut oracle = HlOracle::new(&g, labelling);
    for (s, t) in [(0u32, 49_999u32), (123, 45_678), (7, 7), (31_415, 27_182)] {
        let ub = oracle.upper_bound(s, t);
        match oracle.query(s, t) {
            Some(d) => println!("d({s:>6}, {t:>6}) = {d}   (label upper bound {ub})"),
            None => println!("d({s:>6}, {t:>6}) = unreachable"),
        }
    }

    // The same oracle behind the common trait, for method-generic code.
    let mut boxed: Box<dyn DistanceOracle + '_> = Box::new(oracle);
    let d = boxed.distance(1, 2);
    println!("via DistanceOracle: d(1, 2) = {d:?} using method {}", boxed.name());
}
