//! Side-by-side comparison of every method on one dataset — a miniature of
//! the paper's Table 2/3 you can run in seconds.
//!
//! ```text
//! cargo run --release --example method_comparison [dataset] [queries]
//! ```

use hcl::prelude::*;
use hcl::workloads::queries::sample_pairs;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = args.get(1).map(String::as_str).unwrap_or("Skitter");
    let num_queries: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2_000);

    let spec = hcl::workloads::datasets::dataset_by_name(dataset)
        .unwrap_or_else(|| panic!("unknown dataset {dataset:?}; see Table 1 names"));
    println!("generating {} stand-in …", spec.name);
    let g = spec.generate(1.0);
    println!("  n = {}, m = {}\n", g.num_vertices(), g.num_edges());
    let pairs = sample_pairs(g.num_vertices(), num_queries, 2024);

    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>10}",
        "method", "build", "index bytes", "µs/query", "ALS"
    );

    // HL (this paper).
    let landmarks = LandmarkStrategy::TopDegree(20).select(&g);
    let start = Instant::now();
    let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
    let build = start.elapsed();
    let mut hl = HlOracle::new(&g, labelling);
    report(&mut hl, build, &pairs);

    // FD.
    let start = Instant::now();
    let (fd_index, _) = FdIndex::build(&g, FdConfig::default()).unwrap();
    let build = start.elapsed();
    let mut fd = FdOracle::new(&g, fd_index);
    report(&mut fd, build, &pairs);

    // PLL.
    let start = Instant::now();
    let (pll_index, _) = PllIndex::build(&g, PllConfig::default()).unwrap();
    let build = start.elapsed();
    let mut pll = hcl::baselines::pll::PllOracle::new(pll_index);
    report(&mut pll, build, &pairs);

    // IS-L.
    let start = Instant::now();
    let (isl_index, _) = IslIndex::build(&g, IslConfig::default()).unwrap();
    let build = start.elapsed();
    let mut isl = IslOracle::new(isl_index);
    report(&mut isl, build, &pairs[..pairs.len().min(500)]);

    // Bi-BFS (no index).
    let mut bibfs = BiBfsOracle::new(&g);
    report(&mut bibfs, std::time::Duration::ZERO, &pairs[..pairs.len().min(500)]);

    // Cross-check: all methods agree on a sample.
    let mut mismatch = 0;
    for &(s, t) in pairs.iter().take(200) {
        let d = hl.distance(s, t);
        if fd.distance(s, t) != d
            || pll.distance(s, t) != d
            || isl.distance(s, t) != d
            || bibfs.distance(s, t) != d
        {
            mismatch += 1;
        }
    }
    println!("\ncross-check on 200 pairs: {mismatch} disagreements");
}

fn report(oracle: &mut dyn DistanceOracle, build: std::time::Duration, pairs: &[(u32, u32)]) {
    let start = Instant::now();
    let mut checksum = 0u64;
    for &(s, t) in pairs {
        if let Some(d) = oracle.distance(s, t) {
            checksum = checksum.wrapping_add(d as u64);
        }
    }
    let per_query = start.elapsed().as_micros() as f64 / pairs.len() as f64;
    println!(
        "{:<8} {:>12} {:>14} {:>12.2} {:>10.1}   (checksum {checksum})",
        oracle.name(),
        format!("{build:.2?}"),
        oracle.index_bytes(),
        per_query,
        oracle.avg_label_entries(),
    );
}
