//! Weighted highway cover labelling + shortest-path reconstruction — two
//! extensions beyond the paper (which evaluates unweighted distance-only
//! queries).
//!
//! A logistics-style scenario: a road-ish network with integer edge costs;
//! we answer exact weighted distances through the labelling and reconstruct
//! an actual unweighted route with the greedy path extractor.
//!
//! ```text
//! cargo run --release --example weighted_paths
//! ```

use hcl::core::weighted::{WeightedHighwayCoverLabelling, WeightedHlOracle};
use hcl::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Base topology: small-world network; weights: 1..=10 (travel minutes).
    let base = hcl::graph::generate::watts_strogatz(20_000, 6, 0.05, 9);
    let mut rng = SmallRng::seed_from_u64(17);
    let mut builder = hcl::graph::WeightedGraphBuilder::new(base.num_vertices());
    for (u, v) in base.edges() {
        builder.add_edge(u, v, rng.random_range(1..=10));
    }
    let wg = builder.build();
    println!("weighted network: n = {}, m = {}", wg.num_vertices(), wg.num_edges());

    // Landmarks by weighted-graph degree.
    let mut order: Vec<u32> = (0..wg.num_vertices() as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(wg.degree(v)));
    order.truncate(20);

    let labelling = WeightedHighwayCoverLabelling::build(&wg, &order).expect("build");
    println!(
        "weighted labelling: {} entries ({:.2} per vertex)",
        labelling.total_entries(),
        labelling.total_entries() as f64 / wg.num_vertices() as f64
    );
    let mut oracle = WeightedHlOracle::new(&wg, labelling);
    for (s, t) in [(0u32, 10_000u32), (42, 13_337), (777, 777)] {
        println!("weighted d({s:>5}, {t:>5}) = {:?}", oracle.query(s, t));
    }

    // Path reconstruction on the unweighted graph via the HL oracle.
    let landmarks = LandmarkStrategy::TopDegree(20).select(&base);
    let (unweighted, _) = HighwayCoverLabelling::build_parallel(&base, &landmarks, 0).unwrap();
    let mut hl = HlOracle::new(&base, unweighted);
    let (s, t) = (0u32, 10_000u32);
    let path = hcl::graph::paths::shortest_path(&base, &mut hl, s, t).expect("connected");
    assert!(hcl::graph::paths::is_valid_path(&base, &path));
    println!(
        "\nunweighted route {s} -> {t} ({} hops): {:?} …",
        path.len() - 1,
        &path[..path.len().min(8)]
    );
}
