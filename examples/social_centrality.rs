//! Closeness centrality over a social network — the paper's §1 motivation
//! ("distance is used as a core measure in many problems such as
//! centrality"), which needs exact distances for a large number of vertex
//! pairs.
//!
//! We build the highway cover labelling once, then evaluate the closeness
//! centrality of candidate vertices by exact distance queries against a
//! fixed probe sample — thousands of exact distance computations that would
//! each cost a graph traversal without the index.
//!
//! ```text
//! cargo run --release --example social_centrality
//! ```

use hcl::prelude::*;
use hcl::workloads::queries::sample_pairs;
use std::time::Instant;

fn main() {
    // The LiveJournal stand-in from the evaluation harness.
    let spec = hcl::workloads::datasets::dataset_by_name("LiveJournal").expect("known dataset");
    println!("generating {} stand-in …", spec.name);
    let g = spec.generate(1.0);
    println!("  n = {}, m = {}", g.num_vertices(), g.num_edges());

    let landmarks = LandmarkStrategy::TopDegree(20).select(&g);
    let (labelling, stats) =
        HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).expect("build labelling");
    println!("labelling built in {:?} ({} entries)", stats.duration, stats.labels_added);
    let mut oracle = HlOracle::new(&g, labelling);

    // Estimate closeness centrality c(v) = k / Σ_u d(v, u) over a fixed
    // probe set of k random vertices, for a candidate pool of 200 vertices.
    let probes: Vec<u32> =
        sample_pairs(g.num_vertices(), 400, 7).into_iter().map(|(s, _)| s).collect();
    let candidates: Vec<u32> =
        sample_pairs(g.num_vertices(), 200, 13).into_iter().map(|(s, _)| s).collect();

    let start = Instant::now();
    let mut scored: Vec<(f64, u32)> = Vec::with_capacity(candidates.len());
    let mut queries = 0u64;
    for &v in &candidates {
        let mut sum = 0u64;
        let mut reached = 0u64;
        for &u in &probes {
            queries += 1;
            if let Some(d) = oracle.query(v, u) {
                sum += d as u64;
                reached += 1;
            }
        }
        if reached > 0 {
            scored.push((reached as f64 / sum.max(1) as f64, v));
        }
    }
    let elapsed = start.elapsed();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));

    println!(
        "\n{queries} exact distance queries in {elapsed:?} ({:.1} µs/query)",
        elapsed.as_micros() as f64 / queries as f64
    );
    println!("top-5 candidates by closeness centrality:");
    for (score, v) in scored.iter().take(5) {
        println!("  vertex {v:>7}  closeness {score:.4}  degree {}", g.degree(*v));
    }
}
