//! Context-aware search over a web graph — the paper's other §1 motivation:
//! "ranking of web pages based on their distances to recently visited web
//! pages helps in finding the more relevant pages".
//!
//! Given a user's recently visited pages, candidate results are re-ranked
//! by their minimum exact distance to that context set. Each ranking needs
//! `|context| × |candidates|` exact distance queries, which the highway
//! cover labelling serves in microseconds each.
//!
//! ```text
//! cargo run --release --example web_search_ranking
//! ```

use hcl::prelude::*;
use hcl::workloads::queries::sample_pairs;
use std::time::Instant;

fn main() {
    // The Indochina web-crawl stand-in (copying-model web graph).
    let spec = hcl::workloads::datasets::dataset_by_name("Indochina").expect("known dataset");
    println!("generating {} stand-in …", spec.name);
    let g = spec.generate(1.0);
    println!("  n = {}, m = {}", g.num_vertices(), g.num_edges());

    let landmarks = LandmarkStrategy::TopDegree(20).select(&g);
    let (labelling, stats) =
        HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).expect("build labelling");
    println!("labelling built in {:?}", stats.duration);
    let mut oracle = HlOracle::new(&g, labelling);

    // Browsing context: 8 recently visited pages. Candidates: 50 pages the
    // text-relevance stage returned (here: random).
    let context: Vec<u32> =
        sample_pairs(g.num_vertices(), 8, 99).into_iter().map(|(s, _)| s).collect();
    let candidates: Vec<u32> =
        sample_pairs(g.num_vertices(), 50, 101).into_iter().map(|(s, _)| s).collect();

    let start = Instant::now();
    let mut ranked: Vec<(u32, u32)> = Vec::new(); // (min distance, page)
    for &page in &candidates {
        let best = context.iter().filter_map(|&c| oracle.query(page, c)).min().unwrap_or(u32::MAX);
        ranked.push((best, page));
    }
    ranked.sort_unstable();
    let elapsed = start.elapsed();

    let total = context.len() * candidates.len();
    println!(
        "\nranked {} candidates against {} context pages: {} queries in {:?} ({:.1} µs/query)",
        candidates.len(),
        context.len(),
        total,
        elapsed,
        elapsed.as_micros() as f64 / total as f64
    );
    println!("most contextually relevant pages:");
    for (d, page) in ranked.iter().take(8) {
        println!("  page {page:>7}  distance-to-context {d}");
    }
}
